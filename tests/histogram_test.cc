// Tests for the observability layer: log-linear histogram bucket geometry
// and percentiles against hand-computed answers, concurrent recording, the
// metrics registry (get-or-create identity, Prometheus rendering), and the
// per-request stage trace.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pane {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Bucket geometry. Layout: 32 exact linear buckets for 0..31, then 32
// sub-buckets per power of two with the bucket width doubling each octave.

TEST(HistogramBucketsTest, LinearRangeIsExact) {
  // Every value below 32 gets its own bucket whose lower bound is itself.
  for (int64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v) << v;
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<int>(v)), v) << v;
  }
}

TEST(HistogramBucketsTest, FirstOctaveIsStillExact) {
  // 32..63 is the first log-linear octave; its sub-bucket width is 1, so
  // the mapping stays exact there too.
  for (int64_t v = 32; v < 64; ++v) {
    EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(v)), v) << v;
  }
}

TEST(HistogramBucketsTest, HandComputedBoundaries) {
  // 127 = 0b1111111: octave [64, 128), width 2, sub-bucket 31 -> index
  // 32 + 1*32 + 31 = 95, lower bound 126.
  EXPECT_EQ(Histogram::BucketIndex(127), 95);
  EXPECT_EQ(Histogram::BucketLowerBound(95), 126);
  // 128 starts the next octave: index 32 + 2*32 + 0 = 96, exact bound.
  EXPECT_EQ(Histogram::BucketIndex(128), 96);
  EXPECT_EQ(Histogram::BucketLowerBound(96), 128);
  // 1000: octave [512, 1024), width 16, sub-bucket (1000>>4)-32 = 30 ->
  // index 32 + 4*32 + 30 = 190, lower bound 992.
  EXPECT_EQ(Histogram::BucketIndex(1000), 190);
  EXPECT_EQ(Histogram::BucketLowerBound(190), 992);
}

TEST(HistogramBucketsTest, BoundsRoundTripAcrossTheFullRange) {
  // Lower bounds must be non-decreasing and each must map back to its own
  // bucket — the self-consistency that makes Percentile() monotone.
  for (int idx = 0; idx + 1 < Histogram::kNumBuckets; ++idx) {
    const int64_t lo = Histogram::BucketLowerBound(idx);
    EXPECT_EQ(Histogram::BucketIndex(lo), idx) << idx;
    EXPECT_LE(lo, Histogram::BucketLowerBound(idx + 1)) << idx;
  }
}

// ---------------------------------------------------------------------------
// Percentiles.

TEST(HistogramTest, UniformDistributionPercentiles) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 500500);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 1000);
  // Percentiles report the lower bound of the covering bucket: the 500th
  // value (500) lands in bucket [496, 504), the 990th (990) in [976, 992).
  EXPECT_EQ(snap.p50, 496);
  EXPECT_EQ(h.Percentile(99.0), 976);
  // p100 still reports a bucket bound (the exact max lives in
  // Snapshot::max and the summary's quantile="1" sample).
  EXPECT_EQ(h.Percentile(100.0), 992);
}

TEST(HistogramTest, SingleValuedDistributionIsExact) {
  // All mass in one bucket: the [min, max] clamp makes every percentile
  // report the exact recorded value even though 42's bucket spans [42, 43).
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(42);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.p50, 42);
  EXPECT_EQ(snap.p90, 42);
  EXPECT_EQ(snap.p99, 42);
  EXPECT_EQ(snap.min, 42);
  EXPECT_EQ(snap.max, 42);
  EXPECT_EQ(snap.sum, 4200);
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.p50, 0);
  EXPECT_EQ(snap.p99, 0);
}

TEST(HistogramTest, PathologicalBimodalDistribution) {
  // 99 fast requests and 1 catastrophically slow one: percentiles up to and
  // including p99 (rank ceil(0.99*100) = 99) stay at the fast mode; only
  // the final rank and the exact max see the outlier's magnitude.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(10);
  h.Record(1'000'000);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.p50, 10);
  EXPECT_EQ(snap.p90, 10);
  EXPECT_EQ(snap.p99, 10);
  EXPECT_EQ(Histogram::BucketIndex(h.Percentile(100.0)),
            Histogram::BucketIndex(1'000'000));
  EXPECT_EQ(snap.max, 1'000'000);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
}

TEST(HistogramTest, OverflowClampsBucketButKeepsExactMax) {
  Histogram h;
  const int64_t huge = (int64_t{1} << 62) + 123;
  h.Record(huge);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  // The bucket saturates at kMaxValue, but min/max track the exact value
  // and the [min, max] clamp restores it.
  EXPECT_EQ(snap.max, huge);
  EXPECT_EQ(snap.p50, huge);
}

TEST(HistogramTest, ConcurrentRecordStress) {
  // 8 writers x 10k records; totals must be exact — this is the test the
  // TSan tier leans on to certify the locking.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(t * kPerThread + i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  const Histogram::Snapshot snap = h.TakeSnapshot();
  const int64_t n = int64_t{kThreads} * kPerThread;
  EXPECT_EQ(snap.count, static_cast<uint64_t>(n));
  EXPECT_EQ(snap.sum, n * (n - 1) / 2);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, n - 1);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(MetricsRegistryTest, GetOrCreateReturnsStableIdentity) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("pane_test_total");
  Counter* c2 = registry.GetCounter("pane_test_total");
  EXPECT_EQ(c1, c2);
  // Different labels are a different series.
  Counter* labeled = registry.GetCounter("pane_test_total", "shard=\"0\"");
  EXPECT_NE(c1, labeled);
  Histogram* h1 = registry.GetHistogram("pane_test_us");
  Histogram* h2 = registry.GetHistogram("pane_test_us");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, RenderPrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("pane_requests_total")->Add(7);
  registry.GetGauge("pane_tiles_last")->Set(42);
  Histogram* h = registry.GetHistogram("pane_lat_us", "shard=\"1\"");
  for (int64_t v = 1; v <= 100; ++v) h->Record(v);
  const std::string text = registry.RenderPrometheus();

  EXPECT_NE(text.find("# TYPE pane_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("pane_requests_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pane_tiles_last gauge\n"), std::string::npos);
  EXPECT_NE(text.find("pane_tiles_last 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pane_lat_us summary\n"), std::string::npos);
  EXPECT_NE(text.find("pane_lat_us{shard=\"1\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pane_lat_us{shard=\"1\",quantile=\"0.99\"}"),
            std::string::npos);
  // quantile="1" is the exact max, not a bucket bound.
  EXPECT_NE(text.find("pane_lat_us{shard=\"1\",quantile=\"1\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("pane_lat_us_count{shard=\"1\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("pane_lat_us_sum{shard=\"1\"} 5050\n"),
            std::string::npos);
  // The registry itself appends no stream terminator; the serving layer
  // owns "# EOF".
  EXPECT_EQ(text.find("# EOF"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Request trace.

TEST(RequestTraceTest, AccumulatesAndFormats) {
  RequestTrace trace;
  trace.Add(Stage::kDecode, 5);
  trace.Add(Stage::kScan, 40);
  trace.Add(Stage::kScan, 2);  // Accumulates within a stage.
  trace.Add(Stage::kEncode, 3);
  EXPECT_EQ(trace.us(Stage::kScan), 42);
  EXPECT_EQ(trace.total_us(), 50);
  // Pipeline order, untouched stages included as zeros.
  EXPECT_EQ(trace.FormatBreakdown(),
            "decode_us=5 batch_wait_us=0 engine_scan_us=42 "
            "topk_select_us=0 fanout_us=0 merge_us=0 encode_us=3");
  trace.Reset();
  EXPECT_EQ(trace.total_us(), 0);
  EXPECT_EQ(trace.us(Stage::kScan), 0);
}

TEST(RequestTraceTest, StageNamesAreStable) {
  // These names are wire format: they appear in slow_query log lines and as
  // pane_stage_<name>_us metric names.
  EXPECT_STREQ(StageName(Stage::kDecode), "decode");
  EXPECT_STREQ(StageName(Stage::kBatchWait), "batch_wait");
  EXPECT_STREQ(StageName(Stage::kScan), "engine_scan");
  EXPECT_STREQ(StageName(Stage::kSelect), "topk_select");
  EXPECT_STREQ(StageName(Stage::kFanout), "fanout");
  EXPECT_STREQ(StageName(Stage::kMerge), "merge");
  EXPECT_STREQ(StageName(Stage::kEncode), "encode");
}

}  // namespace
}  // namespace obs
}  // namespace pane
