// Tests for APMI (Algorithm 2): agreement with the independent dense
// reference, the Lemma 3.1 truncation bounds, convergence in eps, and
// parameterized sweeps over alpha.
#include "src/core/apmi.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/affinity.h"
#include "test_util.h"

namespace pane {
namespace {

struct ApmiRun {
  ProbabilityMatrices probs;
  AffinityMatrices affinity;
};

ApmiRun RunApmi(const AttributedGraph& g, double alpha, int t) {
  const CsrMatrix p = g.RandomWalkMatrix();
  const CsrMatrix pt = p.Transposed();
  ApmiInputs inputs;
  inputs.p = &p;
  inputs.p_transposed = &pt;
  inputs.r = &g.attributes();
  inputs.alpha = alpha;
  inputs.t = t;
  ApmiRun run;
  run.probs = ApmiProbabilities(inputs).ValueOrDie();
  run.affinity = Apmi(inputs).ValueOrDie();
  return run;
}

TEST(ApmiTest, MatchesDenseReferenceAtSameT) {
  const AttributedGraph g = testing::SmallSbm(21, 250);
  for (const int t : {1, 3, 7}) {
    const ApmiRun run = RunApmi(g, 0.5, t);
    const auto exact = ExactProbabilities(g, 0.5, t).ValueOrDie();
    EXPECT_LT(run.probs.pf.MaxAbsDiff(exact.pf), 1e-12) << "t=" << t;
    EXPECT_LT(run.probs.pb.MaxAbsDiff(exact.pb), 1e-12) << "t=" << t;
  }
}

TEST(ApmiTest, Lemma31TruncationBounds) {
  // Inequalities (9) and (10): max{0, Pf - eps} <= Pf_t <= Pf, elementwise.
  const AttributedGraph g = testing::Figure1Graph();
  const double alpha = 0.3;
  const double eps = 0.05;
  const int t = ComputeIterationCount(eps, alpha);
  const ApmiRun run = RunApmi(g, alpha, t);
  // "Exact" series: truncated far beyond machine precision.
  const auto exact = ExactProbabilities(g, alpha, 120).ValueOrDie();
  for (int64_t i = 0; i < g.num_nodes(); ++i) {
    for (int64_t j = 0; j < g.num_attributes(); ++j) {
      const double pf = exact.pf(i, j);
      const double pf_t = run.probs.pf(i, j);
      EXPECT_LE(pf_t, pf + 1e-12);
      EXPECT_GE(pf_t, std::max(0.0, pf - eps) - 1e-12);
      const double pb = exact.pb(i, j);
      const double pb_t = run.probs.pb(i, j);
      EXPECT_LE(pb_t, pb + 1e-12);
      EXPECT_GE(pb_t, std::max(0.0, pb - eps) - 1e-12);
    }
  }
}

TEST(ApmiTest, AffinityConvergesAsEpsilonShrinks) {
  const AttributedGraph g = testing::SmallSbm(22, 200);
  const auto exact = ExactAffinity(g, 0.5).ValueOrDie();
  double prev_err = 1e300;
  for (const double eps : {0.25, 0.05, 0.005, 0.0005}) {
    const int t = ComputeIterationCount(eps, 0.5);
    const ApmiRun run = RunApmi(g, 0.5, t);
    const double err = run.affinity.forward.MaxAbsDiff(exact.forward) +
                       run.affinity.backward.MaxAbsDiff(exact.backward);
    EXPECT_LE(err, prev_err + 1e-12) << "eps=" << eps;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 5e-3);
}

TEST(ApmiTest, ComputeAffinityWrapper) {
  const AttributedGraph g = testing::Figure1Graph();
  const auto affinity = ComputeAffinity(g, 0.5, 0.015).ValueOrDie();
  EXPECT_EQ(affinity.forward.rows(), 6);
  EXPECT_EQ(affinity.forward.cols(), 3);
  EXPECT_EQ(affinity.backward.rows(), 6);
}

TEST(ApmiTest, InputValidation) {
  const AttributedGraph g = testing::Figure1Graph();
  const CsrMatrix p = g.RandomWalkMatrix();
  const CsrMatrix pt = p.Transposed();
  ApmiInputs inputs;
  inputs.p = &p;
  inputs.p_transposed = &pt;
  inputs.r = &g.attributes();

  inputs.alpha = 0.0;  // out of range
  inputs.t = 3;
  EXPECT_FALSE(Apmi(inputs).ok());

  inputs.alpha = 0.5;
  inputs.t = 0;  // out of range
  EXPECT_FALSE(Apmi(inputs).ok());

  inputs.t = 3;
  inputs.r = nullptr;
  EXPECT_FALSE(Apmi(inputs).ok());
}

// ---------------------------------------------------------------------------
// Property sweep over alpha: for each stopping probability, the truncated
// probabilities stay within [0, 1], never exceed the exact series, and the
// affinity is finite and non-negative (SPMI property).
class ApmiAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ApmiAlphaSweep, ProbabilitiesWellFormed) {
  const double alpha = GetParam();
  const AttributedGraph g = testing::SmallSbm(23, 150);
  const int t = ComputeIterationCount(0.015, alpha);
  const ApmiRun run = RunApmi(g, alpha, t);
  for (int64_t i = 0; i < g.num_nodes(); ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < g.num_attributes(); ++j) {
      const double pf = run.probs.pf(i, j);
      EXPECT_GE(pf, 0.0);
      EXPECT_LE(pf, 1.0 + 1e-12);
      row_sum += pf;
      EXPECT_TRUE(std::isfinite(run.affinity.forward(i, j)));
      EXPECT_GE(run.affinity.forward(i, j), 0.0);
      EXPECT_TRUE(std::isfinite(run.affinity.backward(i, j)));
      EXPECT_GE(run.affinity.backward(i, j), 0.0);
    }
    // Forward walk distributes at most probability 1 over attributes.
    EXPECT_LE(row_sum, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, ApmiAlphaSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace pane
