// Tests for the epoll transport layer through a real PaneServer over real
// loopback sockets: line and frame conversations over TCP, byte-at-a-time
// request delivery across epoll wakeups, the max-connection refusal path,
// idle-connection reaping, transport counters surfaced through `stats`,
// and lifecycle safety (Shutdown before Listen, AcceptLoop without
// Listen — the old PANE_CHECK ordering trap).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/matrix/dense_matrix.h"
#include "src/serve/frame_protocol.h"
#include "src/serve/protocol.h"
#include "src/serve/query_engine.h"
#include "src/serve/server.h"
#include "src/serve/transport.h"

namespace pane {
namespace {

serve::QueryEngine SmallEngine() {
  static const DenseMatrix xf{{0.5, 0.1}, {0.2, 0.7}, {0.9, 0.3},
                              {0.4, 0.4}, {0.1, 0.8}, {0.6, 0.2}};
  static const DenseMatrix xb{{0.3, 0.6}, {0.8, 0.1}, {0.2, 0.5},
                              {0.7, 0.2}, {0.5, 0.9}, {0.1, 0.4}};
  static const DenseMatrix y{{0.4, 0.9}, {0.6, 0.3}, {0.2, 0.8}, {0.7, 0.5}};
  auto engine = serve::QueryEngine::Create(xf.View(), xb.View(), y.View(),
                                           ConstMatrixView(), {});
  EXPECT_TRUE(engine.ok()) << engine.status();
  return engine.MoveValueUnsafe();
}

int ConnectLoopback(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = write(fd, data.data() + sent, data.size() - sent);
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<size_t>(n);
  }
}

/// Reads until the server closes the connection.
std::string ReadUntilEof(int fd) {
  std::string out;
  char buf[4096];
  ssize_t got = 0;
  while ((got = read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<size_t>(got));
  }
  return out;
}

/// Reads until `out` ends with `suffix` (for probing a still-open
/// connection that will not EOF).
std::string ReadUntilSuffix(int fd, const std::string& suffix) {
  std::string out;
  char buf[4096];
  while (out.size() < suffix.size() ||
         out.compare(out.size() - suffix.size(), suffix.size(), suffix) !=
             0) {
    const ssize_t got = read(fd, buf, sizeof(buf));
    if (got <= 0) break;
    out.append(buf, static_cast<size_t>(got));
  }
  return out;
}

/// A server running its transport loop on a background thread.
class RunningServer {
 public:
  RunningServer(const serve::QueryEngine* engine,
                const serve::ServerOptions& options)
      : server_(engine, options) {
    const auto port = server_.ListenTcp(0);
    EXPECT_TRUE(port.ok()) << port.status();
    port_ = *port;
    loop_ = std::thread([this] { server_.AcceptLoop(); });
  }

  ~RunningServer() {
    server_.Shutdown();
    loop_.join();
  }

  int port() const { return port_; }
  serve::PaneServer& server() { return server_; }

 private:
  serve::PaneServer server_;
  int port_ = 0;
  std::thread loop_;
};

TEST(EpollTransportTest, LineConversationMatchesServeStreamBytes) {
  const serve::QueryEngine engine = SmallEngine();
  const std::string script =
      "attr 2 3\nlink 1 2\npattr 0 1\npair 4 5\nnonsense\nquit\n";

  // Golden transcript via the stream path over the same engine.
  serve::ServerOptions options;
  serve::PaneServer stream_server(&engine, options);
  std::istringstream in(script);
  std::ostringstream golden;
  stream_server.ServeStream(in, golden);

  RunningServer running(&engine, options);
  const int fd = ConnectLoopback(running.port());
  WriteAll(fd, script);
  const std::string response = ReadUntilEof(fd);
  close(fd);
  EXPECT_EQ(response, golden.str());
}

TEST(EpollTransportTest, FrameConversationOverTcp) {
  const serve::QueryEngine engine = SmallEngine();
  serve::ServerOptions options;
  RunningServer running(&engine, options);

  std::string wire;
  serve::AppendFrame("attr 2 3", &wire);
  serve::AppendFrame("quit", &wire);
  const int fd = ConnectLoopback(running.port());
  WriteAll(fd, wire);
  const std::string response = ReadUntilEof(fd);
  close(fd);

  serve::FrameCodec codec;
  std::vector<std::string> payloads;
  size_t pos = 0;
  while (pos < response.size()) {
    std::string_view payload;
    std::string error;
    ASSERT_EQ(codec.Decode(response, &pos, &payload, &error),
              serve::ProtocolCodec::Decoded::kMessage)
        << error;
    payloads.emplace_back(payload);
  }
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0].rfind("attr 2 ok", 0), 0u);
  EXPECT_EQ(payloads[1], "bye");
  EXPECT_EQ(running.server().counters().frames, 2u);
}

TEST(EpollTransportTest, ByteAtATimeRequestsAcrossWakeups) {
  const serve::QueryEngine engine = SmallEngine();
  serve::ServerOptions options;
  RunningServer running(&engine, options);

  const int fd = ConnectLoopback(running.port());
  const int one = 1;
  // Defeat client-side coalescing so the loop really sees partial reads.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const std::string request = "attr 3 2\nquit\n";
  for (const char byte : request) {
    WriteAll(fd, std::string(1, byte));
  }
  const std::string response = ReadUntilEof(fd);
  close(fd);
  EXPECT_EQ(response.rfind("attr 3 ok", 0), 0u) << response;
  EXPECT_NE(response.find("\nbye\n"), std::string::npos) << response;
}

TEST(EpollTransportTest, MaxConnectionsRefusesGracefullyAndCounts) {
  const serve::QueryEngine engine = SmallEngine();
  serve::ServerOptions options;
  options.max_connections = 1;
  RunningServer running(&engine, options);

  const int held = ConnectLoopback(running.port());
  // A served request proves `held` is admitted before the second connect.
  WriteAll(held, "attr 0 1\n");
  ReadUntilSuffix(held, "\n");

  const int refused = ConnectLoopback(running.port());
  EXPECT_EQ(ReadUntilEof(refused), "err server busy\n");
  close(refused);

  // The refusal is visible both through counters() and the stats request.
  EXPECT_EQ(running.server().counters().rejected, 1u);
  WriteAll(held, "stats\n");
  const std::string stats = ReadUntilSuffix(held, "\n");
  EXPECT_NE(stats.find(" rejected=1"), std::string::npos) << stats;
  close(held);
}

TEST(EpollTransportTest, IdleConnectionsAreReaped) {
  const serve::QueryEngine engine = SmallEngine();
  serve::ServerOptions options;
  options.idle_timeout_ms = 50;
  RunningServer running(&engine, options);

  const int fd = ConnectLoopback(running.port());
  // Send nothing: the sweep must close the connection (EOF on our side)
  // without the client ever completing a request.
  EXPECT_EQ(ReadUntilEof(fd), "");
  close(fd);
  EXPECT_EQ(running.server().counters().timeouts, 1u);

  // An active connection with the same timeout still gets answered.
  const int active = ConnectLoopback(running.port());
  WriteAll(active, "attr 1 2\nquit\n");
  const std::string response = ReadUntilEof(active);
  close(active);
  EXPECT_EQ(response.rfind("attr 1 ok", 0), 0u) << response;
}

TEST(EpollTransportTest, LifecycleIsSafeInAnyOrder) {
  const serve::QueryEngine engine = SmallEngine();
  serve::ServerOptions options;
  {
    // AcceptLoop without ListenTcp: a warning and a return, not a crash.
    serve::PaneServer server(&engine, options);
    server.AcceptLoop();
  }
  {
    // Shutdown before ListenTcp, then a loop that exits immediately.
    serve::PaneServer server(&engine, options);
    server.Shutdown();
    const auto port = server.ListenTcp(0);
    ASSERT_TRUE(port.ok()) << port.status();
    server.AcceptLoop();
  }
  {
    // Double shutdown and shutdown-while-running are both fine.
    serve::PaneServer server(&engine, options);
    const auto port = server.ListenTcp(0);
    ASSERT_TRUE(port.ok()) << port.status();
    std::thread loop([&server] { server.AcceptLoop(); });
    server.Shutdown();
    server.Shutdown();
    loop.join();
  }
}

TEST(EpollTransportTest, ManySequentialConnections) {
  const serve::QueryEngine engine = SmallEngine();
  serve::ServerOptions options;
  RunningServer running(&engine, options);
  for (int i = 0; i < 20; ++i) {
    const int fd = ConnectLoopback(running.port());
    WriteAll(fd, "pair 0 1\nquit\n");
    const std::string response = ReadUntilEof(fd);
    close(fd);
    EXPECT_EQ(response.rfind("pair 0 1 ok", 0), 0u) << response;
  }
  EXPECT_EQ(running.server().counters().requests, 40u);
}

}  // namespace
}  // namespace pane
