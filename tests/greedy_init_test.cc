// Tests for GreedyInit (Algorithm 3) and SMGreedyInit (Algorithm 7):
// residual consistency, the near-unitary Y property the seeding relies on,
// Lemma 4.2-style agreement at high rank, and the greedy-vs-random quality
// gap that motivates Section 5.7.
#include "src/core/greedy_init.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/apmi.h"
#include "src/matrix/gemm.h"
#include "src/parallel/thread_pool.h"
#include "test_util.h"

namespace pane {
namespace {

AffinityMatrices TestAffinity(int64_t n = 300, uint64_t seed = 41) {
  return ComputeAffinity(testing::SmallSbm(seed, n), 0.5, 0.015).ValueOrDie();
}

double ResidualConsistencyError(const EmbeddingState& s,
                                const AffinityMatrices& affinity) {
  DenseMatrix sf_expected, sb_expected;
  GemmTransBAddScaled(s.xf, s.y, 1.0, affinity.forward, -1.0, &sf_expected);
  GemmTransBAddScaled(s.xb, s.y, 1.0, affinity.backward, -1.0, &sb_expected);
  return s.sf.MaxAbsDiff(sf_expected) + s.sb.MaxAbsDiff(sb_expected);
}

double OrthonormalityError(const DenseMatrix& q) {
  DenseMatrix gram;
  GemmTransA(q, q, &gram);
  gram.Sub(DenseMatrix::Identity(q.cols()));
  return gram.FrobeniusNorm();
}

TEST(GreedyInitTest, ResidualsConsistent) {
  const AffinityMatrices affinity = TestAffinity();
  const auto state = GreedyInit(affinity, 32, 6).ValueOrDie();
  EXPECT_LT(ResidualConsistencyError(state, affinity), 1e-9);
}

TEST(GreedyInitTest, YIsOrthonormal) {
  const AffinityMatrices affinity = TestAffinity();
  const auto state = GreedyInit(affinity, 32, 6).ValueOrDie();
  // Y = V from the SVD of F' — the "key observation" behind Xb = B'Y.
  EXPECT_LT(OrthonormalityError(state.y), 1e-8);
}

TEST(GreedyInitTest, ApproximatesForwardAffinity) {
  const AffinityMatrices affinity = TestAffinity();
  const auto state = GreedyInit(affinity, 64, 8).ValueOrDie();
  const double f_norm = affinity.forward.FrobeniusNorm();
  // Xf Y^T must already capture most of F' at init (that's the point).
  EXPECT_LT(state.sf.FrobeniusNorm(), 0.5 * f_norm);
}

TEST(GreedyInitTest, ShapesMatchBudget) {
  const AffinityMatrices affinity = TestAffinity();
  const auto state = GreedyInit(affinity, 48, 5).ValueOrDie();
  EXPECT_EQ(state.xf.cols(), 24);
  EXPECT_EQ(state.xb.cols(), 24);
  EXPECT_EQ(state.y.cols(), 24);
  EXPECT_EQ(state.xf.rows(), affinity.forward.rows());
  EXPECT_EQ(state.y.rows(), affinity.forward.cols());
}

TEST(GreedyInitTest, RejectsOddK) {
  const AffinityMatrices affinity = TestAffinity(100, 43);
  EXPECT_FALSE(GreedyInit(affinity, 33, 5).ok());
  EXPECT_FALSE(GreedyInit(affinity, 0, 5).ok());
}

TEST(GreedyInitTest, BetterObjectiveThanRandomInit) {
  const AffinityMatrices affinity = TestAffinity();
  const auto greedy = GreedyInit(affinity, 32, 6).ValueOrDie();
  const auto random = RandomInit(affinity, 32, /*seed=*/7).ValueOrDie();
  // The Figures 7-8 premise: greedy seeding starts far closer to optimal.
  EXPECT_LT(Objective(greedy), 0.5 * Objective(random));
}

TEST(RandomInitTest, ResidualsConsistent) {
  const AffinityMatrices affinity = TestAffinity(150, 44);
  const auto state = RandomInit(affinity, 16, 5).ValueOrDie();
  EXPECT_LT(ResidualConsistencyError(state, affinity), 1e-9);
}

TEST(SmGreedyInitTest, ResidualsConsistent) {
  const AffinityMatrices affinity = TestAffinity();
  ThreadPool pool(4);
  const auto state = SmGreedyInit(affinity, 32, 6, &pool).ValueOrDie();
  EXPECT_LT(ResidualConsistencyError(state, affinity), 1e-9);
}

TEST(SmGreedyInitTest, QualityCloseToSerial) {
  const AffinityMatrices affinity = TestAffinity();
  ThreadPool pool(4);
  const auto serial = GreedyInit(affinity, 32, 6).ValueOrDie();
  const auto parallel = SmGreedyInit(affinity, 32, 6, &pool).ValueOrDie();
  // Split-merge SVD introduces bounded extra error (Section 4.2): the
  // parallel objective stays within a modest factor of the serial one.
  EXPECT_LT(Objective(parallel), 1.5 * Objective(serial) + 1e-9);
}

TEST(SmGreedyInitTest, SingleThreadPoolDelegatesToSerial) {
  const AffinityMatrices affinity = TestAffinity(150, 45);
  ThreadPool pool(1);
  const auto a = SmGreedyInit(affinity, 16, 5, &pool).ValueOrDie();
  const auto b = GreedyInit(affinity, 16, 5).ValueOrDie();
  EXPECT_EQ(a.xf.MaxAbsDiff(b.xf), 0.0);
  EXPECT_EQ(a.y.MaxAbsDiff(b.y), 0.0);
}

TEST(SmGreedyInitTest, Lemma42HighRankRecovery) {
  // At k/2 >= rank(F'), both inits satisfy Xf Y^T = F' (Sf = 0). We build a
  // low-rank affinity stand-in to make the rank condition achievable.
  Rng rng(46);
  DenseMatrix left(120, 6), right(6, 30), f;
  left.FillGaussian(&rng);
  right.FillGaussian(&rng);
  Gemm(left, right, &f);
  AffinityMatrices affinity;
  affinity.forward = f;
  affinity.backward = f;  // same rank structure
  ThreadPool pool(3);
  const auto serial = GreedyInit(affinity, 16, 10).ValueOrDie();
  const auto parallel = SmGreedyInit(affinity, 16, 10, &pool).ValueOrDie();
  const double scale = f.FrobeniusNorm();
  EXPECT_LT(serial.sf.FrobeniusNorm() / scale, 1e-8);
  EXPECT_LT(parallel.sf.FrobeniusNorm() / scale, 1e-8);
}

TEST(ObjectiveTest, MatchesDefinition) {
  EmbeddingState state;
  state.sf = DenseMatrix({{1, 2}, {3, 0}});
  state.sb = DenseMatrix({{0, 1}, {0, 0}});
  // ||Sf||^2 = 14, ||Sb||^2 = 1.
  EXPECT_NEAR(Objective(state), 15.0, 1e-12);
}

}  // namespace
}  // namespace pane
