// Tests for the chunked parallel text parser: layouts, strictness (line
// numbers in errors), CRLF/blank/comment handling, and sequential/parallel
// equivalence across chunk boundaries.
#include "src/graph/text_parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

Result<std::vector<Triplet>> ParsePairs(std::string_view text,
                                        ThreadPool* pool = nullptr) {
  TripletParseOptions options;
  options.pool = pool;
  return ParseTriplets(text, options);
}

TEST(TextParserTest, ParsesPairs) {
  const auto parsed = ParsePairs("0 1\n2 3\n10 20\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].row, 0);
  EXPECT_EQ((*parsed)[0].col, 1);
  EXPECT_DOUBLE_EQ((*parsed)[0].value, 1.0);
  EXPECT_EQ((*parsed)[2].row, 10);
  EXPECT_EQ((*parsed)[2].col, 20);
}

TEST(TextParserTest, ToleratesBlankLinesTabsCrlfAndMissingFinalNewline) {
  const auto parsed = ParsePairs("\n0\t1\r\n\n  2   3  \r\n4 5");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[1].row, 2);
  EXPECT_EQ((*parsed)[2].col, 5);
}

TEST(TextParserTest, RejectsMalformedTokenWithLineNumber) {
  const auto parsed = ParsePairs("0 1\n1 2\nx 3\n4 5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos)
      << parsed.status();
  EXPECT_NE(parsed.status().message().find("x 3"), std::string::npos);
}

TEST(TextParserTest, RejectsTrailingGarbage) {
  const auto parsed = ParsePairs("0 1\n1 2 extra\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
      << parsed.status();
}

TEST(TextParserTest, RejectsMissingField) {
  const auto parsed = ParsePairs("0 1\n7\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(TextParserTest, RejectsGluedToken) {
  // "12x" must not silently parse as 12.
  const auto parsed = ParsePairs("12x 3\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(TextParserTest, PairLayoutRejectsThirdColumn) {
  EXPECT_FALSE(ParsePairs("0 1 0.5\n").ok());
}

TEST(TextParserTest, CommentsOnlySkippedWhenEnabled) {
  TripletParseOptions options;
  options.allow_comments = true;
  const auto parsed = ParseTriplets("# header\n% konect\n0 1\n", options);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 1u);
  EXPECT_FALSE(ParsePairs("# header\n0 1\n").ok());
}

TEST(TextParserTest, WeightedPairLayout) {
  TripletParseOptions options;
  options.layout = TripletLayout::kWeightedPair;
  const auto parsed = ParseTriplets("0 1\n1 2 0.25\n", options);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_DOUBLE_EQ((*parsed)[0].value, 1.0);
  EXPECT_DOUBLE_EQ((*parsed)[1].value, 0.25);
}

TEST(TextParserTest, TripleLayoutRequiresWeight) {
  TripletParseOptions options;
  options.layout = TripletLayout::kTriple;
  const auto parsed = ParseTriplets("3 7 0.5\n1 2 1e-3\n", options);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ((*parsed)[0].value, 0.5);
  EXPECT_DOUBLE_EQ((*parsed)[1].value, 1e-3);
  EXPECT_FALSE(ParseTriplets("3 7\n", options).ok());
}

TEST(TextParserTest, EmptyInputYieldsNoTriplets) {
  const auto parsed = ParsePairs("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

// Build a text large enough to engage the parallel chunking path (>= 1 MiB)
// and check the parallel result matches the sequential one exactly, in
// order — chunk boundaries must not drop, duplicate, or reorder lines.
TEST(TextParserTest, ParallelMatchesSequentialAcrossChunkBoundaries) {
  std::string text;
  const int64_t lines = 120000;
  text.reserve(static_cast<size_t>(lines) * 12);
  for (int64_t i = 0; i < lines; ++i) {
    text += std::to_string(i * 7919 % 100000);
    text += ' ';
    text += std::to_string(i);
    text += '\n';
  }
  ASSERT_GE(text.size(), size_t{1} << 20);
  const auto sequential = ParsePairs(text);
  ASSERT_TRUE(sequential.ok());
  ThreadPool pool(4);
  const auto parallel = ParsePairs(text, &pool);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_EQ(sequential->size(), parallel->size());
  for (size_t i = 0; i < sequential->size(); ++i) {
    EXPECT_EQ((*sequential)[i].row, (*parallel)[i].row) << i;
    EXPECT_EQ((*sequential)[i].col, (*parallel)[i].col) << i;
  }
}

TEST(TextParserTest, ParallelErrorReportsEarliestLine) {
  // Two malformed lines in different chunks: the reported line must be the
  // earliest one in file order.
  std::string text;
  for (int64_t i = 0; i < 300000; ++i) {
    if (i == 1000 || i == 290000) {
      text += "bad line\n";
    } else {
      text += "10 20\n";
    }
  }
  ASSERT_GE(text.size(), size_t{1} << 20);
  ThreadPool pool(4);
  const auto parsed = ParsePairs(text, &pool);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 1001"), std::string::npos)
      << parsed.status();
}

TEST(TextParserTest, ReadFileToStringRoundTrip) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("pane_text_parser_test_" + std::to_string(::getpid()));
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("0 1\n2 3\n", f);
    std::fclose(f);
  }
  const auto contents = ReadFileToString(path.string());
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "0 1\n2 3\n");
  std::filesystem::remove(path);
  EXPECT_TRUE(ReadFileToString(path.string()).status().IsIOError());
}

}  // namespace
}  // namespace pane
