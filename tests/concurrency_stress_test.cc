// Concurrency stress suite, designed to run under the TSan tier
// (cmake --preset tsan): ≥8 threads hammer the BufferPool residency ledger
// and the ThreadPool RunBlocks barrier with randomized interleavings, plus
// a burst through the logger's single guarded write path. Assertions check
// the invariants that survive any interleaving (conserved counts, byte
// integrity through eviction, non-negative ledgers); ThreadSanitizer checks
// everything else.
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/sync.h"
#include "src/parallel/thread_pool.h"
#include "src/store/buffer_pool.h"

namespace pane {
namespace {

constexpr int kStressThreads = 8;

/// MAP_SHARED file mapping, the backing FactorSlab spill files use.
class SharedMapping {
 public:
  explicit SharedMapping(int64_t bytes) : bytes_(bytes) {
    char tmpl[] = "/tmp/pane_stress_test.XXXXXX";
    fd_ = mkstemp(tmpl);
    EXPECT_GE(fd_, 0);
    path_ = tmpl;
    EXPECT_EQ(ftruncate(fd_, bytes), 0);
    base_ = static_cast<char*>(mmap(nullptr, static_cast<size_t>(bytes),
                                    PROT_READ | PROT_WRITE, MAP_SHARED, fd_,
                                    0));
    EXPECT_NE(base_, MAP_FAILED);
  }

  ~SharedMapping() {
    munmap(base_, static_cast<size_t>(bytes_));
    close(fd_);
    unlink(path_.c_str());
  }

  char* base() const { return base_; }
  int64_t bytes() const { return bytes_; }

 private:
  int fd_ = -1;
  std::string path_;
  char* base_ = nullptr;
  int64_t bytes_ = 0;
};

// ---------------------------------------------------------------------------
// BufferPool: random pin/unpin/evict traffic from 8 threads over one region
// under a budget tight enough that the clock hand is always moving. Each
// thread also writes a recognizable pattern into its own disjoint slice
// while pinned; since eviction is MADV_DONTNEED over MAP_SHARED, the bytes
// must survive any eviction schedule — that is the pool's core contract.
TEST(ConcurrencyStressTest, BufferPoolPinEvictHammer) {
  constexpr int64_t kPageBytes = 4096;
  constexpr int64_t kRegionBytes = 256 * kPageBytes;  // 1 MiB
  constexpr int kItersPerThread = 400;

  SharedMapping mapping(kRegionBytes);
  store::BufferPool::Options options;
  options.budget_bytes = 32 * kPageBytes;  // 1/8 of the region: evict a lot
  options.page_bytes = kPageBytes;
  store::BufferPool pool(options);
  const auto region = pool.Register(mapping.base(), kRegionBytes);
  ASSERT_TRUE(region.ok()) << region.status();

  const int64_t slice = kRegionBytes / kStressThreads;
  std::atomic<int64_t> ops{0};
  std::vector<std::thread> threads;
  threads.reserve(kStressThreads);
  for (int t = 0; t < kStressThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(0x5eed + static_cast<uint64_t>(t));
      const int64_t my_begin = t * slice;
      for (int i = 0; i < kItersPerThread; ++i) {
        // Dirty a random page of this thread's slice under a pin.
        const int64_t my_page =
            my_begin + static_cast<int64_t>(rng() % (slice / kPageBytes)) *
                           kPageBytes;
        ASSERT_TRUE(pool.Pin(*region, my_page, my_page + kPageBytes).ok());
        std::memset(mapping.base() + my_page, 'A' + t,
                    static_cast<size_t>(kPageBytes));
        ASSERT_TRUE(
            pool.Unpin(*region, my_page, my_page + kPageBytes, /*dirty=*/true)
                .ok());

        // Shake the ledger with random foreign traffic: pins, floored
        // unpins, region-wide evictions, stats snapshots.
        const int64_t any_begin =
            static_cast<int64_t>(rng() % (kRegionBytes / kPageBytes)) *
            kPageBytes;
        const int64_t any_end = std::min<int64_t>(
            kRegionBytes,
            any_begin + static_cast<int64_t>(1 + rng() % 7) * kPageBytes);
        switch (rng() % 4) {
          case 0:
            ASSERT_TRUE(pool.Pin(*region, any_begin, any_end).ok());
            ASSERT_TRUE(pool.Unpin(*region, any_begin, any_end, false).ok());
            break;
          case 1:
            // Release rows never acquired: valid no-op pin-wise.
            ASSERT_TRUE(pool.Unpin(*region, any_begin, any_end, false).ok());
            break;
          case 2:
            ASSERT_TRUE(pool.EvictRegion(*region).ok());
            break;
          default: {
            const auto stats = pool.stats();
            ASSERT_GE(stats.resident_bytes, 0);
            ASSERT_LE(stats.resident_bytes, stats.registered_bytes);
            break;
          }
        }
        ops.fetch_add(1, std::memory_order_relaxed);
        if (rng() % 8 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ops.load(), kStressThreads * kItersPerThread);

  // Bytes survived every eviction schedule: each slice's last-written pages
  // hold their writer's fill byte (pages never dirtied stay zero from
  // ftruncate).
  for (int t = 0; t < kStressThreads; ++t) {
    const char* p = mapping.base() + t * slice;
    for (int64_t off = 0; off < slice; ++off) {
      const char c = p[off];
      ASSERT_TRUE(c == 0 || c == 'A' + t)
          << "slice " << t << " byte " << off << " corrupted: " << int(c);
    }
  }

  const auto stats = pool.stats();
  EXPECT_GT(stats.evicted_pages, 0) << "budget never forced the clock hand";
  EXPECT_GT(stats.writeback_pages, 0);
  pool.Unregister(*region);
  EXPECT_EQ(pool.stats().registered_bytes, 0);
}

// ---------------------------------------------------------------------------
// ThreadPool: concurrent RunBlocks barriers from several caller threads on
// one shared pool. Each caller owns a disjoint result vector (the claim
// counter is per-call), so any cross-talk between barriers is a bug TSan or
// the sums will catch.
TEST(ConcurrencyStressTest, ConcurrentRunBlocksBarriers) {
  ThreadPool pool(kStressThreads);
  constexpr int kCallers = 4;
  constexpr int kRounds = 50;
  constexpr int kBlocks = 64;

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  std::atomic<int64_t> grand_total{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<int64_t> slots(kBlocks, 0);
        pool.RunBlocks(kBlocks, [&](int b) {
          // Vary block timing so completion order differs per round; the
          // blocks run on several workers at once, so derive the jitter
          // from (c, round, b) instead of sharing an RNG across them.
          if ((b * 31 + round * 7 + c) % 4 == 0) std::this_thread::yield();
          slots[static_cast<size_t>(b)] += b + 1;
        });
        int64_t sum = 0;
        for (const int64_t v : slots) sum += v;
        // The barrier published every block exactly once.
        ASSERT_EQ(sum, static_cast<int64_t>(kBlocks) * (kBlocks + 1) / 2);
        grand_total.fetch_add(sum, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(grand_total.load(),
            static_cast<int64_t>(kCallers) * kRounds * kBlocks *
                (kBlocks + 1) / 2);
}

// ParallelFor built on the same barrier: every element of the range is
// visited exactly once even when ranges land on different workers.
TEST(ConcurrencyStressTest, ParallelForPartitionsExactlyOnce) {
  ThreadPool pool(kStressThreads);
  constexpr int64_t kN = 1 << 16;
  std::vector<std::atomic<uint8_t>> touched(kN);
  for (auto& t : touched) t.store(0);
  ParallelFor(&pool, 0, kN, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      ASSERT_EQ(touched[static_cast<size_t>(i)].fetch_add(1), 0)
          << "element visited twice";
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[static_cast<size_t>(i)].load(), 1);
  }
}

// Submit/future traffic racing pool destruction-time shutdown: futures all
// resolve, and the queue drains before workers exit.
TEST(ConcurrencyStressTest, SubmitDrainsOnShutdown) {
  std::atomic<int64_t> executed{0};
  constexpr int kTasks = 2000;
  {
    ThreadPool pool(kStressThreads);
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(executed.load(), kTasks);
}

// ---------------------------------------------------------------------------
// Logging: concurrent writers through the single guarded write path. The
// lock is exercised only when records actually emit, so log at a level
// above the threshold; TSan asserts the path is race-free.
TEST(ConcurrencyStressTest, LoggerSingleWritePath) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep test output quiet: WARN discarded
  std::vector<std::thread> threads;
  threads.reserve(kStressThreads);
  for (int t = 0; t < kStressThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        // Discarded before the sink (below threshold) — still exercises the
        // level load — plus one emitted record per thread through the lock.
        PANE_LOG(WARNING) << "discarded " << t << ":" << i;
      }
      PANE_LOG(ERROR) << "stress thread " << t << " done";
    });
  }
  for (auto& t : threads) t.join();
  SetLogLevel(saved);
}

}  // namespace
}  // namespace pane
