// Tests for the affinity definitions (Section 2.2): iteration-count
// derivation, SPMI transform properties, exact dense reference, and
// agreement with the Monte-Carlo walk simulator that *defines* the
// quantities being approximated.
#include "src/core/affinity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/random_walk.h"
#include "test_util.h"

namespace pane {
namespace {

TEST(IterationCountTest, MatchesPaperSection56) {
  // "when alpha = 0.5, varying eps from 0.001 to 0.25 corresponds to
  //  reducing the number of iterations t from 9 to 1".
  EXPECT_EQ(ComputeIterationCount(0.001, 0.5), 9);
  EXPECT_EQ(ComputeIterationCount(0.25, 0.5), 1);
  // Default eps = 0.015 at alpha = 0.5.
  EXPECT_EQ(ComputeIterationCount(0.015, 0.5), 6);
}

TEST(IterationCountTest, GuaranteesTailBound) {
  for (double alpha : {0.15, 0.3, 0.5, 0.7, 0.9}) {
    for (double eps : {0.001, 0.015, 0.1, 0.25}) {
      const int t = ComputeIterationCount(eps, alpha);
      EXPECT_LE(std::pow(1.0 - alpha, t + 1), eps + 1e-12)
          << "alpha=" << alpha << " eps=" << eps;
    }
  }
}

TEST(IterationCountTest, ClampsToAtLeastOne) {
  EXPECT_GE(ComputeIterationCount(0.9, 0.9), 1);
}

TEST(SpmiTest, ZeroProbabilityGivesZeroAffinity) {
  ProbabilityMatrices probs;
  probs.pf = DenseMatrix({{0.5, 0.0}, {0.5, 0.0}});
  probs.pb = DenseMatrix({{0.0, 0.0}, {0.3, 0.7}});
  const AffinityMatrices affinity = SpmiFromProbabilities(probs);
  // Zero column of pf -> zero forward affinity column.
  EXPECT_EQ(affinity.forward(0, 1), 0.0);
  EXPECT_EQ(affinity.forward(1, 1), 0.0);
  // Zero row of pb -> zero backward affinity row.
  EXPECT_EQ(affinity.backward(0, 0), 0.0);
  EXPECT_EQ(affinity.backward(0, 1), 0.0);
}

TEST(SpmiTest, UniformProbabilitiesGiveLogTwo) {
  // If p_hat is uniform 1/n down each column, n * p_hat = 1 everywhere and
  // F = ln(2) — the SPMI floor for "no association signal".
  ProbabilityMatrices probs;
  probs.pf = DenseMatrix({{0.25, 0.25}, {0.25, 0.25}});
  probs.pb = DenseMatrix({{0.25, 0.25}, {0.25, 0.25}});
  const AffinityMatrices affinity = SpmiFromProbabilities(probs);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(affinity.forward(i, j), std::log(2.0), 1e-12);
      EXPECT_NEAR(affinity.backward(i, j), std::log(2.0), 1e-12);
    }
  }
}

TEST(SpmiTest, AffinityAlwaysNonNegative) {
  // SPMI = log(x + 1) with x >= 0, hence >= 0 — the shift that motivates
  // SPMI over plain PMI in Section 2.2.
  const AttributedGraph g = testing::SmallSbm(5, 200);
  const auto affinity = ExactAffinity(g, 0.5).ValueOrDie();
  for (int64_t i = 0; i < affinity.forward.rows(); ++i) {
    for (int64_t j = 0; j < affinity.forward.cols(); ++j) {
      EXPECT_GE(affinity.forward(i, j), 0.0);
      EXPECT_GE(affinity.backward(i, j), 0.0);
    }
  }
}

TEST(ExactAffinityTest, RunningExampleQualitativeClaims) {
  // Section 2.3's reading of Table 2: v1 has high affinity with r1 (many
  // intermediate nodes connect them); v6 is the r3 specialist.
  const AttributedGraph g = testing::Figure1Graph();
  const auto affinity = ExactAffinity(g, 0.15).ValueOrDie();
  const DenseMatrix& f = affinity.forward;
  const DenseMatrix& b = affinity.backward;

  // v1 (index 0): r1 is its strongest forward attribute.
  EXPECT_GT(f(0, 0), f(0, 2));
  // v6 (index 5): r3 dominates both directions.
  EXPECT_GT(f(5, 2), f(5, 0));
  EXPECT_GT(b(5, 2), b(5, 0));
  // The paper's v5 observation: forward affinity alone ranks r3 >= r1 for
  // v5 even though v5 owns r1 — backward affinity resolves it.
  EXPECT_GT(b(4, 0), b(4, 2));
}

TEST(ExactAffinityTest, ForwardProbabilitiesMatchWalkSimulation) {
  const AttributedGraph g = testing::Figure1Graph();
  const double alpha = 0.2;
  const auto probs = ExactProbabilities(g, alpha, 60).ValueOrDie();

  WalkSimulator sim(g, alpha, /*seed=*/3);
  const DenseMatrix pf_mc = sim.EstimateForwardProbabilities(60000);
  EXPECT_LT(pf_mc.MaxAbsDiff(probs.pf), 0.01)
      << "Monte-Carlo forward probabilities disagree with the series";
}

TEST(ExactAffinityTest, BackwardProbabilitiesMatchWalkSimulation) {
  const AttributedGraph g = testing::Figure1Graph();
  const double alpha = 0.2;
  const auto probs = ExactProbabilities(g, alpha, 60).ValueOrDie();

  WalkSimulator sim(g, alpha, /*seed=*/4);
  const DenseMatrix pb_mc = sim.EstimateBackwardProbabilities(60000);
  // pb columns are per-attribute distributions over nodes.
  EXPECT_LT(pb_mc.MaxAbsDiff(probs.pb), 0.01);
}

TEST(ExactAffinityTest, RefusesHugeGraphs) {
  SbmParams params;
  params.num_nodes = 5000;
  params.num_edges = 10000;
  params.num_attributes = 4;
  params.num_attr_entries = 5000;
  params.num_communities = 2;
  const AttributedGraph g = GenerateAttributedSbm(params);
  EXPECT_FALSE(ExactProbabilities(g, 0.5, 5).ok());
}

}  // namespace
}  // namespace pane
