// End-to-end tests for the Pane driver (Algorithms 1 and 5): output shapes,
// option validation, downstream quality on homophilous graphs, serial vs
// parallel agreement, determinism, and a k-sweep property test.
#include "src/core/pane.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/tasks/attribute_inference.h"
#include "src/tasks/link_prediction.h"
#include "test_util.h"

namespace pane {
namespace {

PaneOptions DefaultOptions(int k = 32, int threads = 1) {
  PaneOptions options;
  options.k = k;
  options.num_threads = threads;
  return options;
}

TEST(PaneTest, OutputShapes) {
  const AttributedGraph g = testing::SmallSbm(61, 300);
  PaneStats stats;
  const auto embedding = Pane(DefaultOptions()).Train(g, &stats).ValueOrDie();
  EXPECT_EQ(embedding.xf.rows(), 300);
  EXPECT_EQ(embedding.xf.cols(), 16);
  EXPECT_EQ(embedding.xb.cols(), 16);
  EXPECT_EQ(embedding.y.rows(), g.num_attributes());
  EXPECT_EQ(embedding.k(), 32);
  EXPECT_EQ(stats.t, 6);  // eps = 0.015, alpha = 0.5
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_LE(stats.objective_final, stats.objective_initial * (1.0 + 1e-9));
}

TEST(PaneTest, OptionValidation) {
  const AttributedGraph g = testing::Figure1Graph();
  PaneOptions bad = DefaultOptions();
  bad.k = 7;  // odd
  EXPECT_FALSE(Pane(bad).Train(g).ok());
  bad = DefaultOptions();
  bad.alpha = 1.0;
  EXPECT_FALSE(Pane(bad).Train(g).ok());
  bad = DefaultOptions();
  bad.epsilon = 0.0;
  EXPECT_FALSE(Pane(bad).Train(g).ok());
  bad = DefaultOptions();
  bad.num_threads = 0;
  EXPECT_FALSE(Pane(bad).Train(g).ok());
}

TEST(PaneTest, DeterministicForFixedSeed) {
  const AttributedGraph g = testing::SmallSbm(62, 200);
  const auto a = Pane(DefaultOptions()).Train(g).ValueOrDie();
  const auto b = Pane(DefaultOptions()).Train(g).ValueOrDie();
  EXPECT_EQ(a.xf.MaxAbsDiff(b.xf), 0.0);
  EXPECT_EQ(a.xb.MaxAbsDiff(b.xb), 0.0);
  EXPECT_EQ(a.y.MaxAbsDiff(b.y), 0.0);
}

TEST(PaneTest, AttributeInferenceQuality) {
  const AttributedGraph g = testing::SmallSbm(63, 500);
  const auto split = SplitAttributes(g, 0.2, /*seed=*/1).ValueOrDie();
  const auto embedding =
      Pane(DefaultOptions(64)).Train(split.train_graph).ValueOrDie();
  const AucAp result = EvaluateAttributeInference(
      split, [&](int64_t v, int64_t r) { return embedding.AttributeScore(v, r); });
  // Homophilous SBM: held-out attribute entries are predictable well above
  // chance from multi-hop affinity.
  EXPECT_GT(result.auc, 0.78) << "AUC too low";
  EXPECT_GT(result.ap, 0.75) << "AP too low";
}

TEST(PaneTest, LinkPredictionQuality) {
  const AttributedGraph g = testing::SmallSbm(64, 500);
  const auto split = SplitEdges(g, 0.3, /*seed=*/2).ValueOrDie();
  const auto embedding =
      Pane(DefaultOptions(64)).Train(split.residual_graph).ValueOrDie();
  const EdgeScorer scorer(embedding);
  const AucAp result = EvaluateLinkPrediction(
      split, [&](int64_t u, int64_t v) { return scorer.Score(u, v); });
  EXPECT_GT(result.auc, 0.75);
}

TEST(PaneTest, ParallelCloseToSerial) {
  const AttributedGraph g = testing::SmallSbm(65, 400);
  const auto split = SplitAttributes(g, 0.2, /*seed=*/3).ValueOrDie();
  const auto serial =
      Pane(DefaultOptions(32, 1)).Train(split.train_graph).ValueOrDie();
  const auto parallel =
      Pane(DefaultOptions(32, 4)).Train(split.train_graph).ValueOrDie();
  const AucAp serial_auc = EvaluateAttributeInference(
      split, [&](int64_t v, int64_t r) { return serial.AttributeScore(v, r); });
  const AucAp parallel_auc = EvaluateAttributeInference(
      split,
      [&](int64_t v, int64_t r) { return parallel.AttributeScore(v, r); });
  // Section 5.2: parallel PANE degrades utility only marginally.
  EXPECT_NEAR(parallel_auc.auc, serial_auc.auc, 0.03);
}

TEST(PaneTest, GreedyInitBeatsRandomInitAtEqualBudget) {
  const AttributedGraph g = testing::SmallSbm(66, 400);
  PaneOptions greedy = DefaultOptions();
  greedy.ccd_iterations = 2;
  PaneOptions random = greedy;
  random.greedy_init = false;
  PaneStats greedy_stats, random_stats;
  ASSERT_TRUE(Pane(greedy).Train(g, &greedy_stats).ok());
  ASSERT_TRUE(Pane(random).Train(g, &random_stats).ok());
  EXPECT_LT(greedy_stats.objective_final, random_stats.objective_final);
}

TEST(PaneTest, WorksOnUndirectedGraphs) {
  const AttributedGraph g = testing::SmallSbm(67, 300, /*undirected=*/true);
  const auto embedding = Pane(DefaultOptions()).Train(g).ValueOrDie();
  EXPECT_EQ(embedding.xf.rows(), 300);
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < embedding.xf.cols(); ++j) {
      EXPECT_TRUE(std::isfinite(embedding.xf(i, j)));
    }
  }
}

TEST(PaneTest, EmptyGraphRejected) {
  GraphBuilder builder(0, 0);
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  EXPECT_FALSE(Pane(DefaultOptions()).Train(g).ok());
}

TEST(PaneTest, StatsPhaseTimesSumBelowTotal) {
  const AttributedGraph g = testing::SmallSbm(68, 300);
  PaneStats stats;
  ASSERT_TRUE(Pane(DefaultOptions()).Train(g, &stats).ok());
  EXPECT_LE(stats.affinity_seconds + stats.init_seconds + stats.ccd_seconds,
            stats.total_seconds + 1e-6);
}

// Parameterized sweep over the space budget k (Figures 5a / 6a): larger k
// must never produce an invalid embedding, and quality trends upward.
class PaneKSweep : public ::testing::TestWithParam<int> {};

TEST_P(PaneKSweep, TrainsAndScoresFinite) {
  const int k = GetParam();
  const AttributedGraph g = testing::SmallSbm(69, 250);
  const auto embedding = Pane(DefaultOptions(k)).Train(g).ValueOrDie();
  EXPECT_EQ(embedding.k(), k);
  const double score = embedding.AttributeScore(0, 0);
  EXPECT_TRUE(std::isfinite(score));
}

INSTANTIATE_TEST_SUITE_P(KGrid, PaneKSweep, ::testing::Values(8, 16, 32, 64));

}  // namespace
}  // namespace pane
