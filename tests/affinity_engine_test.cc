// Tests for the panel-streamed affinity engine: every panel decomposition
// (width 1, width > d, non-divisible widths, budget-derived widths) and
// thread count must reproduce the historical serial APMI path bitwise, and
// the engine's reported scratch allocation must respect the memory budget.
#include "src/core/affinity_engine.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "src/common/sync.h"
#include "src/core/affinity.h"
#include "src/core/apmi.h"
#include "src/parallel/thread_pool.h"
#include "test_util.h"

namespace pane {
namespace {

struct GraphInputs {
  CsrMatrix p;
  CsrMatrix pt;
  const CsrMatrix* r;
};

GraphInputs MakeInputs(const AttributedGraph& g) {
  GraphInputs in;
  in.p = g.RandomWalkMatrix();
  in.pt = in.p.Transposed();
  in.r = &g.attributes();
  return in;
}

// The historical unfused path: dense probability matrices, then the SPMI
// transform as a separate pass. The engine must match it bitwise.
AffinityMatrices ReferenceAffinity(const GraphInputs& in, double alpha,
                                   int t) {
  ApmiInputs inputs;
  inputs.p = &in.p;
  inputs.p_transposed = &in.pt;
  inputs.r = in.r;
  inputs.alpha = alpha;
  inputs.t = t;
  return SpmiFromProbabilities(ApmiProbabilities(inputs).ValueOrDie());
}

AffinityMatrices RunEngine(const GraphInputs& in,
                           const AffinityEngineOptions& options,
                           AffinityEngineStats* stats = nullptr) {
  return ComputeAffinityPanels(in.p, in.pt, *in.r, options, stats)
      .ValueOrDie();
}

void ExpectBitwiseEqual(const AffinityMatrices& a, const AffinityMatrices& b,
                        const std::string& label) {
  EXPECT_EQ(a.forward.MaxAbsDiff(b.forward), 0.0) << label;
  EXPECT_EQ(a.backward.MaxAbsDiff(b.backward), 0.0) << label;
}

// ---------------------------------------------------------------------------
// Panel-width sweep: width 1, small widths, a width that does not divide d,
// exactly d, and wider than d, serial and pooled — all bitwise equal to the
// unfused reference.

class PanelWidthSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(PanelWidthSweep, BitwiseEqualToUnfusedReferenceSerial) {
  const AttributedGraph g = testing::SmallSbm(41, 250);  // d = 80
  const GraphInputs in = MakeInputs(g);
  const AffinityMatrices reference = ReferenceAffinity(in, 0.5, 5);
  AffinityEngineOptions options;
  options.alpha = 0.5;
  options.t = 5;
  options.panel_width = GetParam();
  AffinityEngineStats stats;
  const AffinityMatrices got = RunEngine(in, options, &stats);
  ExpectBitwiseEqual(reference, got,
                     "panel_width=" + std::to_string(GetParam()));
  // Widths beyond d are clamped to d.
  EXPECT_LE(stats.panel_width, in.r->cols());
  EXPECT_EQ(stats.num_panels,
            (in.r->cols() + stats.panel_width - 1) / stats.panel_width);
}

TEST_P(PanelWidthSweep, BitwiseEqualToUnfusedReferencePooled) {
  const AttributedGraph g = testing::SmallSbm(42, 250);
  const GraphInputs in = MakeInputs(g);
  const AffinityMatrices reference = ReferenceAffinity(in, 0.3, 4);
  ThreadPool pool(4);
  AffinityEngineOptions options;
  options.alpha = 0.3;
  options.t = 4;
  options.pool = &pool;
  options.panel_width = GetParam();
  const AffinityMatrices got = RunEngine(in, options);
  ExpectBitwiseEqual(reference, got,
                     "pooled panel_width=" + std::to_string(GetParam()));
}

// d = 80: 1 and 7 exercise narrow / non-divisible panels (80 % 7 != 0),
// 33 a non-divisible mid width, 80 the single-panel case, 200 > d clamping.
INSTANTIATE_TEST_SUITE_P(WidthGrid, PanelWidthSweep,
                         ::testing::Values<int64_t>(1, 7, 33, 80, 200));

TEST(AffinityEngineTest, Figure1GraphAllWidths) {
  // 3 attributes with degenerate walks (nodes without attributes).
  const AttributedGraph g = testing::Figure1Graph();
  const GraphInputs in = MakeInputs(g);
  const AffinityMatrices reference = ReferenceAffinity(in, 0.5, 3);
  for (int64_t width = 1; width <= 4; ++width) {
    AffinityEngineOptions options;
    options.alpha = 0.5;
    options.t = 3;
    options.panel_width = width;
    ExpectBitwiseEqual(reference, RunEngine(in, options),
                       "figure1 width=" + std::to_string(width));
  }
}

// ---------------------------------------------------------------------------
// Budget-derived widths.

TEST(AffinityEngineTest, BudgetDerivesWidthAndRespectsIt) {
  const AttributedGraph g = testing::SmallSbm(43, 400);  // n=400, d=80
  const GraphInputs in = MakeInputs(g);
  const AffinityMatrices reference = ReferenceAffinity(in, 0.5, 5);
  AffinityEngineOptions options;
  options.alpha = 0.5;
  options.t = 5;
  // 1 MiB budget, serial: width = 2^20 / (2 * 8 * 400) = 163 -> clamped to
  // d = 80 here; shrink the budget until the width is genuinely partial.
  options.memory_budget_mb = 1;
  AffinityEngineStats stats;
  const AffinityMatrices got = RunEngine(in, options, &stats);
  ExpectBitwiseEqual(reference, got, "budget=1MiB");
  EXPECT_FALSE(stats.budget_clamped);
  // Regression: the reported scratch allocation never exceeds the budget
  // when the budget admits at least one width-1 panel.
  EXPECT_LE(stats.scratch_bytes, options.memory_budget_mb << 20);
}

TEST(AffinityEngineTest, PooledBudgetSequentialPanelsGetWholeBudget) {
  // n=500, 8 workers, 1 MiB: a single full-width panel fits the budget, so
  // the engine runs panels in sequence (row-parallel inside) rather than
  // slicing the budget across in-flight panels it will never have.
  const AttributedGraph g = testing::SmallSbm(44, 500);
  const GraphInputs in = MakeInputs(g);
  const AffinityMatrices reference = ReferenceAffinity(in, 0.5, 5);
  ThreadPool pool(8);
  AffinityEngineOptions options;
  options.alpha = 0.5;
  options.t = 5;
  options.pool = &pool;
  options.memory_budget_mb = 1;
  AffinityEngineStats stats;
  const AffinityMatrices got = RunEngine(in, options, &stats);
  ExpectBitwiseEqual(reference, got, "pooled budget=1MiB sequential");
  EXPECT_FALSE(stats.budget_clamped);
  EXPECT_FALSE(stats.panel_parallel);
  EXPECT_EQ(stats.panel_width, in.r->cols());  // whole budget, one panel
  EXPECT_LE(stats.scratch_bytes, options.memory_budget_mb << 20);
}

TEST(AffinityEngineTest, PooledBudgetRespectedAcrossInFlightPanels) {
  // n=4000, 4 workers, 1 MiB: the budget-wide panel already splits into
  // enough panels to occupy the pool, so the engine goes panel-parallel and
  // re-divides the budget across the up-to-5 (workers + draining caller)
  // panels in flight.
  const AttributedGraph g = testing::SmallSbm(44, 4000);
  const GraphInputs in = MakeInputs(g);
  const AffinityMatrices reference = ReferenceAffinity(in, 0.5, 5);
  ThreadPool pool(4);
  AffinityEngineOptions options;
  options.alpha = 0.5;
  options.t = 5;
  options.pool = &pool;
  options.memory_budget_mb = 1;
  AffinityEngineStats stats;
  const AffinityMatrices got = RunEngine(in, options, &stats);
  ExpectBitwiseEqual(reference, got, "pooled budget=1MiB panel-parallel");
  EXPECT_FALSE(stats.budget_clamped);
  EXPECT_TRUE(stats.panel_parallel);
  // 4 workers sharing 1 MiB across in-flight panels must shrink the width
  // well below the whole-budget derivation.
  EXPECT_LT(stats.panel_width, in.r->cols());
  EXPECT_LE(stats.scratch_bytes, options.memory_budget_mb << 20);
}

TEST(AffinityEngineTest, BudgetBelowPanelParallelFallsBackToSequential) {
  // n=9000, 8 workers, 1 MiB: one panel per in-flight worker would need
  // width < 1, but sequential width-7 panels (2^20 / (2*8*9000) = 7) fit.
  // The engine must prefer the budget-respecting sequential decomposition
  // over clamping into a budget-violating panel-parallel one.
  const AttributedGraph g = testing::SmallSbm(45, 9000);
  const GraphInputs in = MakeInputs(g);
  ThreadPool pool(8);
  AffinityEngineOptions options;
  options.alpha = 0.5;
  options.t = 2;
  options.pool = &pool;
  options.memory_budget_mb = 1;
  AffinityEngineStats stats;
  const AffinityMatrices got = RunEngine(in, options, &stats);
  EXPECT_FALSE(stats.budget_clamped);
  EXPECT_FALSE(stats.panel_parallel);
  EXPECT_EQ(stats.panel_width, 7);
  EXPECT_LE(stats.scratch_bytes, options.memory_budget_mb << 20);
  const AffinityMatrices reference = ReferenceAffinity(in, 0.5, 2);
  ExpectBitwiseEqual(reference, got, "sequential fallback panels");
}

TEST(AffinityEngineTest, BudgetSmallerThanOnePanelClampsWithWarningFlag) {
  // Even a single sequential width-1 panel exceeds the budget:
  // 2 * 8 * n = 1,120,000 bytes > 1 MiB for n=70000. The engine clamps to
  // one width-1 panel at a time (the smallest possible overshoot) and says
  // so via budget_clamped.
  const AttributedGraph g = testing::SmallSbm(46, 70000);
  const GraphInputs in = MakeInputs(g);
  ThreadPool pool(4);
  AffinityEngineOptions options;
  options.alpha = 0.5;
  options.t = 2;
  options.pool = &pool;
  options.memory_budget_mb = 1;
  AffinityEngineStats stats;
  const AffinityMatrices got = RunEngine(in, options, &stats);
  EXPECT_TRUE(stats.budget_clamped);
  EXPECT_FALSE(stats.panel_parallel);
  EXPECT_EQ(stats.panel_width, 1);
  EXPECT_EQ(stats.num_panels, in.r->cols());
  // Overshoot is bounded by one panel's scratch, not max_in_flight of them.
  EXPECT_EQ(stats.scratch_bytes,
            2 * static_cast<int64_t>(sizeof(double)) * in.r->rows());
  const AffinityMatrices reference = ReferenceAffinity(in, 0.5, 2);
  ExpectBitwiseEqual(reference, got, "clamped width-1 panels");
}

TEST(AffinityEngineTest, UnboundedDefaultsReproduceHistoricalShapes) {
  const AttributedGraph g = testing::SmallSbm(46, 200);  // d = 80
  const GraphInputs in = MakeInputs(g);
  AffinityEngineOptions options;
  options.alpha = 0.5;
  options.t = 3;
  AffinityEngineStats stats;
  RunEngine(in, options, &stats);
  // Serial, unbounded: one panel spanning the whole attribute set (APMI).
  EXPECT_EQ(stats.panel_width, 80);
  EXPECT_EQ(stats.num_panels, 1);

  ThreadPool pool(5);
  options.pool = &pool;
  RunEngine(in, options, &stats);
  // Pooled, unbounded: ceil(d / nb) columns per worker (PAPMI).
  EXPECT_EQ(stats.panel_width, 16);
  EXPECT_EQ(stats.num_panels, 5);
  EXPECT_TRUE(stats.panel_parallel);
}

TEST(AffinityEngineTest, NegativeBackwardRowSumZeroesRowLikeReference) {
  // P = I, so the backward probabilities are a scaled copy of Rc. Column
  // sums of R are +0.5 each, so Rc row 1 normalizes to {-1, -1}: a backward
  // row with nonzero entries and a negative sum. The reference defines B'
  // as all-zero there; the engine's in-place transform must not leak the
  // raw accumulated values.
  const CsrMatrix p =
      CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}}).ValueOrDie();
  const CsrMatrix pt = p.Transposed();
  const CsrMatrix r =
      CsrMatrix::FromTriplets(
          2, 2, {{0, 0, 1.0}, {1, 0, -0.5}, {0, 1, 1.0}, {1, 1, -0.5}})
          .ValueOrDie();
  ApmiInputs ref_inputs;
  ref_inputs.p = &p;
  ref_inputs.p_transposed = &pt;
  ref_inputs.r = &r;
  ref_inputs.alpha = 0.5;
  ref_inputs.t = 3;
  const AffinityMatrices reference =
      SpmiFromProbabilities(ApmiProbabilities(ref_inputs).ValueOrDie());
  AffinityEngineOptions options;
  options.alpha = 0.5;
  options.t = 3;
  options.panel_width = 1;
  const AffinityMatrices got =
      ComputeAffinityPanels(p, pt, r, options).ValueOrDie();
  ExpectBitwiseEqual(reference, got, "negative backward row sum");
  EXPECT_EQ(got.backward(1, 0), 0.0);
  EXPECT_EQ(got.backward(1, 1), 0.0);
}

// ---------------------------------------------------------------------------
// Graph-level entries.

TEST(AffinityEngineTest, ComputeAffinityAcceptsPoolAndBudget) {
  const AttributedGraph g = testing::SmallSbm(47, 300);
  const AffinityMatrices serial = ComputeAffinity(g, 0.5, 0.015).ValueOrDie();
  ThreadPool pool(4);
  AffinityEngineStats stats;
  const AffinityMatrices pooled =
      ComputeAffinity(g, 0.5, 0.015, &pool, /*memory_budget_mb=*/2, &stats)
          .ValueOrDie();
  ExpectBitwiseEqual(serial, pooled, "ComputeAffinity pool+budget");
  EXPECT_LE(stats.scratch_bytes, int64_t{2} << 20);
}

TEST(AffinityEngineTest, EmptyMatricesReturnEmptyOutputs) {
  // n = 0 with a budget used to divide by zero deriving the panel width.
  const CsrMatrix p = CsrMatrix::FromTriplets(0, 0, {}).ValueOrDie();
  const CsrMatrix r = CsrMatrix::FromTriplets(0, 3, {}).ValueOrDie();
  AffinityEngineOptions options;
  options.memory_budget_mb = 1;
  const auto out = ComputeAffinityPanels(p, p, r, options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->forward.rows(), 0);
  EXPECT_EQ(out->forward.cols(), 3);
  EXPECT_EQ(out->backward.rows(), 0);
}

// ---------------------------------------------------------------------------
// Slab outputs and the panel consumer.

TEST(AffinityEngineTest, MmapSlabsBitwiseEqualToDensePath) {
  const AttributedGraph g = testing::SmallSbm(48, 250);
  const GraphInputs in = MakeInputs(g);
  AffinityEngineOptions options;
  options.alpha = 0.5;
  options.t = 4;
  const AffinityMatrices dense = RunEngine(in, options);
  options.backing = FactorSlab::Backing::kMmap;
  options.memory_budget_mb = 1;  // narrow panels + per-panel residency drops
  AffinityEngineStats stats;
  const AffinitySlabs slabs =
      ComputeAffinitySlabs(in.p, in.pt, *in.r, options, &stats)
          .ValueOrDie();
  ASSERT_TRUE(slabs.forward.spilled());
  EXPECT_TRUE(stats.spilled);
  EXPECT_FALSE(stats.panel_parallel);  // spill forces sequential panels
  EXPECT_EQ(slabs.forward.MaxAbsDiff(dense.forward), 0.0);
  EXPECT_EQ(slabs.backward.MaxAbsDiff(dense.backward), 0.0);
}

TEST(AffinityEngineTest, PooledMmapSlabsBitwiseEqual) {
  const AttributedGraph g = testing::SmallSbm(49, 250);
  const GraphInputs in = MakeInputs(g);
  AffinityEngineOptions options;
  options.alpha = 0.5;
  options.t = 4;
  const AffinityMatrices dense = RunEngine(in, options);
  ThreadPool pool(4);
  options.pool = &pool;
  options.backing = FactorSlab::Backing::kMmap;
  const AffinitySlabs slabs =
      ComputeAffinitySlabs(in.p, in.pt, *in.r, options).ValueOrDie();
  EXPECT_EQ(slabs.forward.MaxAbsDiff(dense.forward), 0.0);
  EXPECT_EQ(slabs.backward.MaxAbsDiff(dense.backward), 0.0);
}

TEST(AffinityEngineTest, PanelConsumerSeesEveryPanelOnce) {
  const AttributedGraph g = testing::SmallSbm(50, 200);  // d = 80
  const GraphInputs in = MakeInputs(g);
  ThreadPool pool(4);
  AffinityEngineOptions options;
  options.alpha = 0.5;
  options.t = 3;
  options.panel_width = 16;  // 5 panels per direction
  options.pool = &pool;
  Mutex mutex;
  int64_t forward_events = 0;
  int64_t backward_events = 0;
  int64_t forward_complete_events = 0;
  int64_t cols_seen = 0;
  options.panel_consumer = [&](const AffinityPanelEvent& event) {
    MutexLock lock(&mutex);
    (event.forward ? forward_events : backward_events) += 1;
    if (event.forward_complete) {
      ++forward_complete_events;
      EXPECT_EQ(event.panels_done, event.num_panels);
    }
    if (event.forward) cols_seen += event.col_end - event.col_begin;
  };
  AffinityEngineStats stats;
  ComputeAffinitySlabs(in.p, in.pt, *in.r, options, &stats).ValueOrDie();
  EXPECT_EQ(forward_events, stats.num_panels);
  EXPECT_EQ(backward_events, stats.num_panels);
  EXPECT_EQ(forward_complete_events, 1);
  EXPECT_EQ(cols_seen, in.r->cols());
}

TEST(AffinityEngineTest, IntoSlabsRejectsMisshapenSlabs) {
  const AttributedGraph g = testing::Figure1Graph();
  const GraphInputs in = MakeInputs(g);
  AffinityEngineOptions options;
  options.t = 2;
  AffinitySlabs out;
  out.forward = DenseMatrix(2, 2);  // wrong shape, non-empty
  EXPECT_FALSE(
      ComputeAffinityIntoSlabs(in.p, in.pt, *in.r, options, &out).ok());
}

TEST(AffinityEngineTest, InputValidation) {
  const AttributedGraph g = testing::Figure1Graph();
  const GraphInputs in = MakeInputs(g);
  AffinityEngineOptions options;
  options.alpha = 0.0;  // out of range
  EXPECT_FALSE(ComputeAffinityPanels(in.p, in.pt, *in.r, options).ok());
  options.alpha = 0.5;
  options.t = 0;  // out of range
  EXPECT_FALSE(ComputeAffinityPanels(in.p, in.pt, *in.r, options).ok());
  options.t = 3;
  options.memory_budget_mb = -1;
  EXPECT_FALSE(ComputeAffinityPanels(in.p, in.pt, *in.r, options).ok());
  options.memory_budget_mb = 0;
  options.panel_width = -2;
  EXPECT_FALSE(ComputeAffinityPanels(in.p, in.pt, *in.r, options).ok());
  options.panel_width = 0;
  // P^T shape mismatch.
  EXPECT_FALSE(ComputeAffinityPanels(in.p, *in.r, *in.r, options).ok());
}

}  // namespace
}  // namespace pane
