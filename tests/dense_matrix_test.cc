// Tests for the dense matrix container and elementwise/block operations.
#include "src/matrix/dense_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"

namespace pane {
namespace {

TEST(DenseMatrixTest, ConstructionZeroInitialized) {
  DenseMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(DenseMatrixTest, InitializerList) {
  DenseMatrix m({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(1, 2), 6.0);
}

TEST(DenseMatrixTest, RowPointerIsContiguous) {
  DenseMatrix m({{1, 2}, {3, 4}});
  const double* row1 = m.Row(1);
  EXPECT_EQ(row1[0], 3.0);
  EXPECT_EQ(row1[1], 4.0);
}

TEST(DenseMatrixTest, Transposed) {
  DenseMatrix m({{1, 2, 3}, {4, 5, 6}});
  const DenseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), t(j, i));
  }
}

TEST(DenseMatrixTest, TransposeLargeRoundTrip) {
  Rng rng(5);
  DenseMatrix m(131, 77);  // exercises the blocked path
  m.FillGaussian(&rng);
  EXPECT_EQ(m.Transposed().Transposed().MaxAbsDiff(m), 0.0);
}

TEST(DenseMatrixTest, RowAndColBlocks) {
  DenseMatrix m({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  const DenseMatrix rb = m.RowBlock(1, 3);
  EXPECT_EQ(rb.rows(), 2);
  EXPECT_EQ(rb(0, 0), 4.0);
  EXPECT_EQ(rb(1, 2), 9.0);
  const DenseMatrix cb = m.ColBlock(1, 2);
  EXPECT_EQ(cb.cols(), 1);
  EXPECT_EQ(cb(2, 0), 8.0);
}

TEST(DenseMatrixTest, SetBlock) {
  DenseMatrix m(3, 3);
  m.SetBlock(1, 1, DenseMatrix({{5, 6}, {7, 8}}));
  EXPECT_EQ(m(1, 1), 5.0);
  EXPECT_EQ(m(2, 2), 8.0);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(DenseMatrixTest, ArithmeticOps) {
  DenseMatrix a({{1, 2}, {3, 4}});
  DenseMatrix b({{10, 20}, {30, 40}});
  a.Add(b);
  EXPECT_EQ(a(1, 1), 44.0);
  a.Sub(b);
  EXPECT_EQ(a(0, 0), 1.0);
  a.Scale(2.0);
  EXPECT_EQ(a(0, 1), 4.0);
  a.Axpy(0.5, b);
  EXPECT_EQ(a(0, 0), 2.0 + 5.0);
}

TEST(DenseMatrixTest, Norms) {
  DenseMatrix m({{3, 4}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 7.0);
}

TEST(DenseMatrixTest, MaxAbsDiff) {
  DenseMatrix a({{1, 2}});
  DenseMatrix b({{1.5, 1.0}});
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 1.0);
}

TEST(DenseMatrixTest, RowColumnSums) {
  DenseMatrix m({{1, 2}, {3, 4}});
  const auto cols = m.ColumnSums();
  EXPECT_DOUBLE_EQ(cols[0], 4.0);
  EXPECT_DOUBLE_EQ(cols[1], 6.0);
  const auto rows = m.RowSums();
  EXPECT_DOUBLE_EQ(rows[0], 3.0);
  EXPECT_DOUBLE_EQ(rows[1], 7.0);
}

TEST(DenseMatrixTest, Identity) {
  const DenseMatrix i = DenseMatrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(i.Sum(), 3.0);
}

TEST(DenseMatrixTest, FillGaussianMoments) {
  Rng rng(3);
  DenseMatrix m(200, 200);
  m.FillGaussian(&rng, 1.0, 2.0);
  const double mean = m.Sum() / m.size();
  EXPECT_NEAR(mean, 1.0, 0.05);
}

TEST(DenseMatrixTest, ResizeDiscardsContents) {
  DenseMatrix m({{1, 2}});
  m.Resize(2, 2);
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m.rows(), 2);
}

TEST(DenseMatrixTest, ToStringTruncates) {
  DenseMatrix m(20, 20);
  const std::string s = m.ToString(3, 3);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("20 x 20"), std::string::npos);
}

}  // namespace
}  // namespace pane
