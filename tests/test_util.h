// Shared fixtures for the algorithm tests: the paper's Figure 1 running
// example and small SBM instances.
#pragma once

#include "src/graph/generators.h"
#include "src/graph/graph.h"

namespace pane {
namespace testing {

/// The extended-graph running example of Figure 1 (6 nodes, 3 attributes).
/// Edges transcribed from the figure; v1 (index 0) and v2 (index 1) carry no
/// attributes, exercising the degenerate-walk footnote.
inline AttributedGraph Figure1Graph() {
  GraphBuilder builder(6, 3);
  builder.AddEdge(0, 2).AddEdge(2, 0);  // v1 <-> v3
  builder.AddEdge(0, 4).AddEdge(4, 0);  // v1 <-> v5
  builder.AddEdge(1, 2);                // v2 -> v3
  builder.AddEdge(2, 3);                // v3 -> v4
  builder.AddEdge(3, 0);                // v4 -> v1
  builder.AddEdge(4, 5);                // v5 -> v6
  builder.AddEdge(5, 3);                // v6 -> v4
  builder.AddNodeAttribute(2, 0, 1.0);  // v3 - r1
  builder.AddNodeAttribute(3, 0, 1.0);  // v4 - r1
  builder.AddNodeAttribute(4, 0, 1.0);  // v5 - r1
  builder.AddNodeAttribute(2, 1, 1.0);  // v3 - r2
  builder.AddNodeAttribute(4, 1, 1.0);  // v5 - r2
  builder.AddNodeAttribute(5, 2, 1.0);  // v6 - r3
  return builder.Build(false).ValueOrDie();
}

/// Small homophilous SBM instance for end-to-end quality tests.
inline AttributedGraph SmallSbm(uint64_t seed = 12, int64_t n = 400,
                                bool undirected = false) {
  SbmParams params;
  params.num_nodes = n;
  params.num_edges = 6 * n;
  params.num_attributes = 80;
  params.num_attr_entries = 8 * n;
  params.num_communities = 4;
  params.edge_homophily = 0.85;
  params.attr_homophily = 0.85;
  params.undirected = undirected;
  params.seed = seed;
  return GenerateAttributedSbm(params);
}

}  // namespace testing
}  // namespace pane
