// Tests for the multiply kernels: sparse-dense and dense-dense, serial vs
// parallel, against naive references.
#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/matrix/csr_matrix.h"
#include "src/matrix/gemm.h"
#include "src/matrix/spmm.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

DenseMatrix NaiveMultiply(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (int64_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
  }
  return c;
}

CsrMatrix RandomSparse(int64_t rows, int64_t cols, int64_t nnz, Rng* rng) {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(nnz));
  for (int64_t i = 0; i < nnz; ++i) {
    triplets.push_back(
        Triplet{static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(rows))),
                static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(cols))),
                rng->Gaussian()});
  }
  return CsrMatrix::FromTriplets(rows, cols, triplets).ValueOrDie();
}

TEST(SpMMTest, MatchesDenseReference) {
  Rng rng(1);
  const CsrMatrix a = RandomSparse(40, 30, 200, &rng);
  DenseMatrix x(30, 7);
  x.FillGaussian(&rng);
  DenseMatrix out;
  SpMM(a, x, &out);
  const DenseMatrix expected = NaiveMultiply(a.ToDense(), x);
  EXPECT_LT(out.MaxAbsDiff(expected), 1e-12);
}

TEST(SpMMTest, ParallelMatchesSerial) {
  Rng rng(2);
  const CsrMatrix a = RandomSparse(123, 77, 900, &rng);
  DenseMatrix x(77, 9);
  x.FillGaussian(&rng);
  DenseMatrix serial, parallel;
  SpMM(a, x, &serial);
  ThreadPool pool(4);
  SpMM(a, x, &parallel, &pool);
  EXPECT_EQ(serial.MaxAbsDiff(parallel), 0.0);  // row-partitioned => bitwise
}

TEST(SpMMTest, FusedAddScaled) {
  Rng rng(3);
  const CsrMatrix a = RandomSparse(25, 25, 120, &rng);
  DenseMatrix x(25, 4), y(25, 4);
  x.FillGaussian(&rng);
  y.FillGaussian(&rng);
  DenseMatrix out;
  SpMMAddScaled(a, x, 0.7, y, 0.3, &out);
  DenseMatrix expected = NaiveMultiply(a.ToDense(), x);
  expected.Scale(0.7);
  expected.Axpy(0.3, y);
  EXPECT_LT(out.MaxAbsDiff(expected), 1e-12);
}

TEST(SpMVTest, MatchesDense) {
  Rng rng(4);
  const CsrMatrix a = RandomSparse(15, 10, 60, &rng);
  std::vector<double> x(10);
  for (double& v : x) v = rng.Gaussian();
  std::vector<double> y;
  SpMV(a, x, &y);
  const DenseMatrix ad = a.ToDense();
  for (int64_t i = 0; i < 15; ++i) {
    double expected = 0.0;
    for (int64_t j = 0; j < 10; ++j) expected += ad(i, j) * x[static_cast<size_t>(j)];
    EXPECT_NEAR(y[static_cast<size_t>(i)], expected, 1e-12);
  }
}

TEST(SpMVTest, ParallelMatchesSequential) {
  Rng rng(6);
  const CsrMatrix a = RandomSparse(63, 40, 500, &rng);
  std::vector<double> x(40);
  for (double& v : x) v = rng.Gaussian();
  std::vector<double> sequential, parallel;
  SpMV(a, x, &sequential);
  ThreadPool pool(4);
  SpMV(a, x, &parallel, &pool);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_DOUBLE_EQ(sequential[i], parallel[i]) << i;
  }
}

TEST(GemmTest, MatchesNaive) {
  Rng rng(5);
  DenseMatrix a(17, 23), b(23, 11);
  a.FillGaussian(&rng);
  b.FillGaussian(&rng);
  DenseMatrix c;
  Gemm(a, b, &c);
  EXPECT_LT(c.MaxAbsDiff(NaiveMultiply(a, b)), 1e-11);
}

TEST(GemmTest, ParallelMatchesSerial) {
  Rng rng(6);
  DenseMatrix a(64, 32), b(32, 16);
  a.FillGaussian(&rng);
  b.FillGaussian(&rng);
  DenseMatrix serial, parallel;
  Gemm(a, b, &serial);
  ThreadPool pool(3);
  Gemm(a, b, &parallel, &pool);
  EXPECT_EQ(serial.MaxAbsDiff(parallel), 0.0);
}

TEST(GemmTransATest, MatchesNaive) {
  Rng rng(7);
  DenseMatrix a(20, 8), b(20, 5);
  a.FillGaussian(&rng);
  b.FillGaussian(&rng);
  DenseMatrix c;
  GemmTransA(a, b, &c);
  EXPECT_LT(c.MaxAbsDiff(NaiveMultiply(a.Transposed(), b)), 1e-11);
}

TEST(GemmTransBTest, MatchesNaive) {
  Rng rng(8);
  DenseMatrix a(12, 9), b(14, 9);
  a.FillGaussian(&rng);
  b.FillGaussian(&rng);
  DenseMatrix c;
  GemmTransB(a, b, &c);
  EXPECT_LT(c.MaxAbsDiff(NaiveMultiply(a, b.Transposed())), 1e-11);
}

TEST(GemmTransBAddScaledTest, ResidualForm) {
  Rng rng(9);
  DenseMatrix x(10, 4), y(6, 4), f(10, 6);
  x.FillGaussian(&rng);
  y.FillGaussian(&rng);
  f.FillGaussian(&rng);
  DenseMatrix s;
  GemmTransBAddScaled(x, y, 1.0, f, -1.0, &s);  // S = X Y^T - F
  DenseMatrix expected = NaiveMultiply(x, y.Transposed());
  expected.Sub(f);
  EXPECT_LT(s.MaxAbsDiff(expected), 1e-11);
}

TEST(GemmTest, ShapeMismatchAborts) {
  DenseMatrix a(2, 3), b(4, 2), c;
  EXPECT_DEATH(Gemm(a, b, &c), "shape");
}

}  // namespace
}  // namespace pane
