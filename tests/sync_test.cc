// Tests for the annotated sync primitives (src/common/sync.h): mutual
// exclusion, scoped release on every path, reader parallelism /
// writer exclusion on SharedMutex, and CondVar wakeup semantics. These run
// under the TSan tier in CI, so a wrapper that silently stopped locking
// would fail twice — once on the counters below and once as a reported
// race.
#include "src/common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pane {
namespace {

TEST(MutexTest, ExcludesConcurrentIncrements) {
  Mutex mu;
  int64_t counter = 0;  // guarded by mu (annotation needs a class scope)
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  std::atomic<int> outcome{-1};
  // TryLock from another thread: relocking the underlying mutex on the
  // owning thread would be UB, so the probe must run elsewhere.
  std::thread probe([&] {
    if (mu.TryLock()) {
      mu.Unlock();
      outcome.store(1);
    } else {
      outcome.store(0);
    }
  });
  probe.join();
  EXPECT_EQ(outcome.load(), 0);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, WriterExcludesReadersAndWriters) {
  SharedMutex mu;
  int64_t value = 0;
  std::atomic<int64_t> read_sum{0};
  constexpr int kWriters = 2;
  constexpr int kReaders = 6;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        WriterMutexLock lock(&mu);
        ++value;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      int64_t local = 0;
      for (int i = 0; i < kIters; ++i) {
        ReaderMutexLock lock(&mu);
        local += value;  // racy only if the reader lock were broken
      }
      read_sum.fetch_add(local);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(value, static_cast<int64_t>(kWriters) * kIters);
  // Every read saw some prefix of the writes.
  EXPECT_GE(read_sum.load(), 0);
  EXPECT_LE(read_sum.load(),
            static_cast<int64_t>(kReaders) * kIters * kWriters * kIters);
}

TEST(CondVarTest, WaitReleasesMutexAndWakes) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu
  int64_t observed = -1;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = 42;
  });

  // If Wait failed to release the mutex, this Lock would deadlock.
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.Signal();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, SignalAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 8;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.SignalAll();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

// A guarded class exactly as production code writes it, exercising the
// annotation macros end-to-end (this file compiles under
// -Werror=thread-safety in the strict Clang build — an unguarded access
// here would fail that build, which is the real assertion).
class BoundedCounter {
 public:
  void Add(int64_t delta) PANE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    value_ += delta;
    cv_.Signal();
  }

  /// Blocks until the counter reaches at least `target`, then returns it.
  int64_t WaitForAtLeast(int64_t target) PANE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (value_ < target) cv_.Wait(&mu_);
    return value_;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int64_t value_ PANE_GUARDED_BY(mu_) = 0;
};

TEST(AnnotatedUsageTest, GuardedCounterAcrossThreads) {
  BoundedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) counter.Add(1);
    });
  }
  const int64_t total = static_cast<int64_t>(kThreads) * kIters;
  EXPECT_EQ(counter.WaitForAtLeast(total), total);
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace pane
