// The sharded scatter-gather serving fabric, end to end: the shard plan
// and its protocol text, artifact splitting (slice containers that reopen
// as shard stores), the router over in-process shard fleets and over real
// TCP backends, and the degradation path when a shard dies mid-serve.
//
// The load-bearing assertions are differential: a Router fronting 1–4
// shards must answer every scripted conversation byte-identically to an
// unsharded PaneServer over the same artifact — same scores (%.17g), same
// tie-breaks, same error text, same `plan` line. That identity is the
// fabric's contract (ISSUE 9), not an approximation.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/api/node_embedding.h"
#include "src/common/logging.h"
#include "src/core/pane.h"
#include "src/matrix/gemm.h"
#include "src/parallel/thread_pool.h"
#include "src/serve/embedding_store.h"
#include "src/serve/query_engine.h"
#include "src/serve/router.h"
#include "src/serve/server.h"
#include "src/serve/shard_plan.h"
#include "test_util.h"

namespace pane {
namespace {

using serve::ShardPlan;
using serve::ShardSpec;

// ---- Shard plan ---------------------------------------------------------

TEST(ShardPlanTest, TilesBothAxesContiguouslyAndNearEvenly) {
  const ShardPlan plan = serve::MakeShardPlan(10, 7, 3);
  ASSERT_EQ(plan.shards.size(), 3u);
  int64_t node_cursor = 0, attr_cursor = 0;
  for (size_t i = 0; i < plan.shards.size(); ++i) {
    const ShardSpec& s = plan.shards[i];
    EXPECT_EQ(s.shard_index, static_cast<int64_t>(i));
    EXPECT_EQ(s.shard_count, 3);
    EXPECT_EQ(s.node_begin, node_cursor);
    EXPECT_EQ(s.attr_begin, attr_cursor);
    // Near-even: no range more than one row bigger than another.
    EXPECT_GE(s.node_end - s.node_begin, 10 / 3);
    EXPECT_LE(s.node_end - s.node_begin, 10 / 3 + 1);
    node_cursor = s.node_end;
    attr_cursor = s.attr_end;
  }
  EXPECT_EQ(node_cursor, 10);
  EXPECT_EQ(attr_cursor, 7);
}

TEST(ShardPlanTest, MoreShardsThanRowsLeavesEmptySlices) {
  const ShardPlan plan = serve::MakeShardPlan(2, 1, 4);
  ASSERT_EQ(plan.shards.size(), 4u);
  // The trailing shards hold empty ranges but still tile the space.
  EXPECT_EQ(plan.shards[3].node_begin, plan.shards[3].node_end);
  EXPECT_EQ(plan.shards[1].attr_begin, plan.shards[1].attr_end);
  std::vector<ShardSpec> specs = plan.shards;
  for (ShardSpec& s : specs) s.dim = 16;
  EXPECT_TRUE(serve::ValidateShardSpecs(specs, nullptr).ok());
}

std::vector<ShardSpec> ValidSpecs(int count) {
  ShardPlan plan = serve::MakeShardPlan(100, 40, count);
  for (ShardSpec& s : plan.shards) {
    s.dim = 16;
    s.has_attributes = true;
    s.has_links = true;
  }
  return plan.shards;
}

TEST(ShardPlanTest, ValidateAcceptsAndFillsPlan) {
  ShardPlan plan;
  ASSERT_TRUE(serve::ValidateShardSpecs(ValidSpecs(3), &plan).ok());
  EXPECT_EQ(plan.num_nodes, 100);
  EXPECT_EQ(plan.num_attributes, 40);
  EXPECT_EQ(plan.shards.size(), 3u);
}

TEST(ShardPlanTest, ValidateRejectsBadFleets) {
  EXPECT_FALSE(serve::ValidateShardSpecs({}, nullptr).ok());

  // Backends passed out of plan order.
  auto swapped = ValidSpecs(3);
  std::swap(swapped[0], swapped[1]);
  EXPECT_FALSE(serve::ValidateShardSpecs(swapped, nullptr).ok());

  // A gap in the node tiling (shard 1's range shrunk).
  auto gap = ValidSpecs(3);
  gap[1].node_end -= 1;
  EXPECT_FALSE(serve::ValidateShardSpecs(gap, nullptr).ok());

  // Shards cut from different artifacts (global shape mismatch).
  auto mixed = ValidSpecs(2);
  mixed[1].num_nodes += 1;
  EXPECT_FALSE(serve::ValidateShardSpecs(mixed, nullptr).ok());
  mixed = ValidSpecs(2);
  mixed[1].dim = 32;
  EXPECT_FALSE(serve::ValidateShardSpecs(mixed, nullptr).ok());

  // A missing tail shard.
  auto truncated = ValidSpecs(3);
  truncated.pop_back();
  for (ShardSpec& s : truncated) s.shard_count = 2;
  EXPECT_FALSE(serve::ValidateShardSpecs(truncated, nullptr).ok());
}

TEST(ShardPlanTest, PlanResponseRoundTrips) {
  for (const ShardSpec& spec : ValidSpecs(3)) {
    const std::string text = serve::FormatPlanResponse(spec);
    auto parsed = serve::ParsePlanResponse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " for " << text;
    EXPECT_EQ(parsed->shard_index, spec.shard_index);
    EXPECT_EQ(parsed->shard_count, spec.shard_count);
    EXPECT_EQ(parsed->num_nodes, spec.num_nodes);
    EXPECT_EQ(parsed->num_attributes, spec.num_attributes);
    EXPECT_EQ(parsed->node_begin, spec.node_begin);
    EXPECT_EQ(parsed->node_end, spec.node_end);
    EXPECT_EQ(parsed->attr_begin, spec.attr_begin);
    EXPECT_EQ(parsed->attr_end, spec.attr_end);
    EXPECT_EQ(parsed->dim, spec.dim);
    EXPECT_EQ(parsed->has_attributes, spec.has_attributes);
    EXPECT_EQ(parsed->has_links, spec.has_links);
  }
}

TEST(ShardPlanTest, PlanResponseRejectsGarbage) {
  EXPECT_FALSE(serve::ParsePlanResponse("err shard unavailable").ok());
  EXPECT_FALSE(serve::ParsePlanResponse("stats ok requests=1").ok());
  EXPECT_FALSE(serve::ParsePlanResponse("").ok());
  EXPECT_FALSE(serve::ParsePlanResponse(
                   "plan ok shard=0/1 nodes=0:10/10 attrs=0:4/4 dim=16 "
                   "attr_scoring=1")  // truncated
                   .ok());
  EXPECT_FALSE(serve::ParsePlanResponse(
                   "plan ok shard=1/1 nodes=0:10/10 attrs=0:4/4 dim=16 "
                   "attr_scoring=1 link_scoring=1")  // index >= count
                   .ok());
  EXPECT_FALSE(serve::ParsePlanResponse(
                   "plan ok shard=0/1 nodes=0:11/10 attrs=0:4/4 dim=16 "
                   "attr_scoring=1 link_scoring=1")  // end > total
                   .ok());
  EXPECT_FALSE(serve::ParsePlanResponse(
                   "plan ok shard=0/1 nodes=0:10/10 attrs=0:4/4 dim=0 "
                   "attr_scoring=1 link_scoring=1")  // dim must be positive
                   .ok());
}

// ---- Trained artifact fixture -------------------------------------------

struct ShardFixture {
  AttributedGraph graph;
  PaneEmbedding embedding;
  std::string artifact_path;

  static const ShardFixture& Get() {
    static const ShardFixture* fixture = [] {
      auto* f = new ShardFixture();
      f->graph = testing::SmallSbm(161, 300);
      PaneOptions options;
      options.k = 32;
      f->embedding = Pane(options).Train(f->graph).ValueOrDie();
      NodeEmbedding artifact;
      artifact.method = "pane";
      artifact.xf = f->embedding.xf;
      artifact.xb = f->embedding.xb;
      artifact.y = f->embedding.y;
      artifact.features.Resize(f->embedding.num_nodes(),
                               2 * f->embedding.xf.cols());
      artifact.features.SetBlock(0, 0, f->embedding.xf);
      artifact.features.SetBlock(0, f->embedding.xf.cols(), f->embedding.xb);
      artifact.link_convention = LinkConvention::kForwardBackward;
      artifact.attribute_convention = AttributeConvention::kFactors;
      f->artifact_path = (std::filesystem::temp_directory_path() /
                          ("shard_artifact_" + std::to_string(::getpid()) +
                           ".bin"))
                             .string();
      PANE_CHECK_OK(artifact.Save(f->artifact_path));
      return f;
    }();
    return *fixture;
  }
};

void ExpectSameRows(ConstMatrixView view, ConstMatrixView full,
                    int64_t row_base, const std::string& what) {
  ASSERT_EQ(view.cols(), full.cols()) << what;
  for (int64_t i = 0; i < view.rows(); ++i) {
    const double* got = view.Row(i);
    const double* want = full.Row(row_base + i);
    for (int64_t j = 0; j < view.cols(); ++j) {
      ASSERT_EQ(got[j], want[j]) << what << " row " << i << " col " << j;
    }
  }
}

// ---- Artifact splitting -------------------------------------------------

TEST(ShardSplitTest, SplitContainersReopenAsShardStores) {
  const ShardFixture& f = ShardFixture::Get();
  const std::string prefix = (std::filesystem::temp_directory_path() /
                              ("shard_split_" + std::to_string(::getpid())))
                                 .string();
  std::vector<std::string> paths;
  ASSERT_TRUE(
      serve::SplitEmbeddingArtifact(f.artifact_path, prefix, 3, &paths).ok());
  ASSERT_EQ(paths.size(), 3u);

  // The expected Z, derived exactly as the splitter (and the unsharded
  // engine) derive it.
  DenseMatrix gram, z;
  GemmTransA(f.embedding.y.View(), f.embedding.y.View(), &gram);
  Gemm(f.embedding.xb.View(), gram, &z);

  const ShardPlan plan =
      serve::MakeShardPlan(f.embedding.num_nodes(),
                           f.embedding.num_attributes(), 3);
  for (size_t i = 0; i < paths.size(); ++i) {
    auto store = serve::EmbeddingStore::Open(paths[i]);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_TRUE(store->sharded());
    const store::ShardMeta& meta = store->shard();
    EXPECT_EQ(meta.shard_index, static_cast<int64_t>(i));
    EXPECT_EQ(meta.shard_count, 3);
    EXPECT_EQ(meta.node_begin, plan.shards[i].node_begin);
    EXPECT_EQ(meta.node_end, plan.shards[i].node_end);
    EXPECT_EQ(meta.attr_begin, plan.shards[i].attr_begin);
    EXPECT_EQ(meta.attr_end, plan.shards[i].attr_end);
    EXPECT_TRUE(meta.has_attributes);
    EXPECT_TRUE(meta.has_links);
    // Globals stay global; the slices carry the shard's rows bitwise.
    EXPECT_EQ(store->num_nodes(), f.embedding.num_nodes());
    EXPECT_EQ(store->num_attributes(), f.embedding.num_attributes());
    ExpectSameRows(store->xf(), f.embedding.xf.View(), 0, "xf");
    ExpectSameRows(store->xb(), f.embedding.xb.View(), 0, "xb");
    ExpectSameRows(store->y(), f.embedding.y.View(), meta.attr_begin, "y");
    ExpectSameRows(store->z(), z.View(), meta.node_begin, "z");
  }
  for (const std::string& path : paths) std::filesystem::remove(path);
}

TEST(ShardSplitTest, RefusesToResplitAShardContainer) {
  const ShardFixture& f = ShardFixture::Get();
  const std::string prefix = (std::filesystem::temp_directory_path() /
                              ("shard_resplit_" + std::to_string(::getpid())))
                                 .string();
  std::vector<std::string> paths;
  ASSERT_TRUE(
      serve::SplitEmbeddingArtifact(f.artifact_path, prefix, 2, &paths).ok());
  EXPECT_FALSE(
      serve::SplitEmbeddingArtifact(paths[0], prefix + ".again", 2, nullptr)
          .ok());
  for (const std::string& path : paths) std::filesystem::remove(path);
}

// ---- Router differential (the fabric's contract) ------------------------

/// The scripted conversation both sides answer: all four query families,
/// boundary ids, cross-shard tie potential, out-of-range errors, `plan`,
/// and a repeat (cache path). `quit` is deliberately absent so the stream
/// drains on EOF.
std::string DifferentialScript(int64_t n, int64_t d) {
  std::ostringstream script;
  for (const int64_t v : {int64_t{0}, int64_t{1}, int64_t{7}, n / 2, n - 1}) {
    script << "attr " << v << " 5\n";
    script << "link " << v << " 5\n";
    script << "pattr " << v << " " << v % d << "\n";
    script << "pair " << v << " " << (v + 1) % n << "\n";
  }
  script << "pattr 0 " << (d - 1) << "\n";
  script << "pair 0 " << (n - 1) << "\n";
  script << "attr 0 " << (d + 10) << "\n";   // k past the candidate count
  script << "pattr 0 " << d << "\n";         // id out of range
  script << "pair 0 " << n << "\n";          // id out of range
  script << "attr " << n << " 5\n";          // node out of range
  script << "bogus request\n";               // parse error
  script << "plan\n";
  script << "attr 0 5\n";                    // repeat: cache on both sides
  return script.str();
}

std::string ServeScript(serve::PaneServer* server, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  server->ServeStream(in, out);
  return out.str();
}

/// The unsharded reference transcript over the artifact store.
std::string UnshardedTranscript(const serve::EmbeddingStore& store,
                                const serve::ServerOptions& server_options,
                                const std::string& script) {
  auto engine =
      serve::QueryEngine::Create(store, serve::QueryEngineOptions());
  PANE_CHECK(engine.ok()) << engine.status();
  serve::PaneServer server(&*engine, server_options);
  return ServeScript(&server, script);
}

TEST(ShardRouterTest, LocalFleetsAnswerByteIdenticallyForAnyShardCount) {
  const ShardFixture& f = ShardFixture::Get();
  auto store = serve::EmbeddingStore::Open(f.artifact_path);
  ASSERT_TRUE(store.ok()) << store.status();
  const std::string script =
      DifferentialScript(store->num_nodes(), store->num_attributes());
  const serve::ServerOptions server_options;
  const std::string expected =
      UnshardedTranscript(*store, server_options, script);

  ThreadPool pool(4);
  for (const int shards : {1, 2, 3, 4}) {
    auto fleet = serve::BuildLocalShards(*store, shards,
                                         serve::QueryEngineOptions(),
                                         server_options, nullptr);
    ASSERT_TRUE(fleet.ok()) << fleet.status();
    serve::RouterOptions router_options;
    router_options.pool = &pool;
    auto router =
        serve::Router::Create(std::move(fleet->backends), router_options);
    ASSERT_TRUE(router.ok()) << router.status();
    EXPECT_EQ(router->num_shards(), shards);
    serve::PaneServer server(&*router, server_options);
    EXPECT_EQ(ServeScript(&server, script), expected)
        << "shards=" << shards;
  }
}

TEST(ShardRouterTest, ExclusionSemanticsSurviveSharding) {
  const ShardFixture& f = ShardFixture::Get();
  auto store = serve::EmbeddingStore::Open(f.artifact_path);
  ASSERT_TRUE(store.ok()) << store.status();
  const std::string script =
      DifferentialScript(store->num_nodes(), store->num_attributes());
  serve::ServerOptions server_options;
  server_options.exclude = &f.graph;
  const std::string expected =
      UnshardedTranscript(*store, server_options, script);

  auto fleet = serve::BuildLocalShards(*store, 3, serve::QueryEngineOptions(),
                                       server_options, nullptr);
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  auto router = serve::Router::Create(std::move(fleet->backends),
                                      serve::RouterOptions());
  ASSERT_TRUE(router.ok()) << router.status();
  serve::PaneServer server(&*router, server_options);
  EXPECT_EQ(ServeScript(&server, script), expected);
}

TEST(ShardRouterTest, RejectsBackendsOutOfPlanOrder) {
  const ShardFixture& f = ShardFixture::Get();
  auto store = serve::EmbeddingStore::Open(f.artifact_path);
  ASSERT_TRUE(store.ok()) << store.status();
  auto fleet = serve::BuildLocalShards(*store, 2, serve::QueryEngineOptions(),
                                       serve::ServerOptions(), nullptr);
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  std::swap(fleet->backends[0], fleet->backends[1]);
  auto router = serve::Router::Create(std::move(fleet->backends),
                                      serve::RouterOptions());
  EXPECT_FALSE(router.ok());
}

TEST(ShardRouterTest, PrunedFleetServesWellFormedRankings) {
  // Pruned answers are approximate (per-slice k-means), so no byte diff
  // against the unsharded pruned server — the contract here is shape: one
  // ok response per request, rankings non-empty for well-covered queries.
  const ShardFixture& f = ShardFixture::Get();
  auto store = serve::EmbeddingStore::Open(f.artifact_path);
  ASSERT_TRUE(store.ok()) << store.status();
  serve::ServerOptions server_options;
  server_options.pruned = true;
  server_options.nprobe = 8;
  serve::IvfOptions ivf;
  ivf.kmeans_iters = 4;
  auto fleet = serve::BuildLocalShards(*store, 3, serve::QueryEngineOptions(),
                                       server_options, &ivf);
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  auto router = serve::Router::Create(std::move(fleet->backends),
                                      serve::RouterOptions());
  ASSERT_TRUE(router.ok()) << router.status();
  serve::PaneServer server(&*router, server_options);
  const std::string out =
      ServeScript(&server, "attr 3 5\nlink 3 5\nattr 42 4\nlink 42 4\n");
  std::istringstream lines(out);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_NE(line.find(" ok "), std::string::npos) << line;
  }
  EXPECT_EQ(count, 4);
}

// ---- Remote shards over real TCP ----------------------------------------

/// One in-process shard server bound to an ephemeral loopback port.
struct TcpShard {
  std::unique_ptr<serve::EmbeddingStore> store;
  std::unique_ptr<serve::QueryEngine> engine;
  std::unique_ptr<serve::PaneServer> server;
  std::thread acceptor;
  int port = 0;

  static TcpShard Start(const std::string& path) {
    TcpShard shard;
    auto store = serve::EmbeddingStore::Open(path);
    PANE_CHECK(store.ok()) << store.status();
    shard.store = std::make_unique<serve::EmbeddingStore>(
        store.MoveValueUnsafe());
    auto engine = serve::QueryEngine::Create(*shard.store,
                                             serve::QueryEngineOptions());
    PANE_CHECK(engine.ok()) << engine.status();
    shard.engine =
        std::make_unique<serve::QueryEngine>(engine.MoveValueUnsafe());
    shard.server = std::make_unique<serve::PaneServer>(
        shard.engine.get(), serve::ServerOptions());
    auto port = shard.server->ListenTcp(0);
    PANE_CHECK(port.ok()) << port.status();
    shard.port = *port;
    shard.acceptor = std::thread(
        [server = shard.server.get()] { server->AcceptLoop(); });
    return shard;
  }

  void Stop() {
    server->Shutdown();
    if (acceptor.joinable()) acceptor.join();
  }
};

TEST(ShardRouterTest, RemoteFleetOverTcpMatchesUnshardedAndDegradesOnDeath) {
  const ShardFixture& f = ShardFixture::Get();
  const std::string prefix = (std::filesystem::temp_directory_path() /
                              ("shard_tcp_" + std::to_string(::getpid())))
                                 .string();
  std::vector<std::string> paths;
  ASSERT_TRUE(
      serve::SplitEmbeddingArtifact(f.artifact_path, prefix, 3, &paths).ok());

  std::vector<TcpShard> shards;
  for (const std::string& path : paths) shards.push_back(TcpShard::Start(path));

  serve::RouterOptions router_options;
  router_options.hop_timeout_ms = 5000;
  std::vector<std::unique_ptr<serve::ShardBackend>> backends;
  for (const TcpShard& shard : shards) {
    backends.push_back(std::make_unique<serve::RemoteShard>(
        "127.0.0.1:" + std::to_string(shard.port), router_options));
  }
  auto router = serve::Router::Create(std::move(backends), router_options);
  ASSERT_TRUE(router.ok()) << router.status();

  auto store = serve::EmbeddingStore::Open(f.artifact_path);
  ASSERT_TRUE(store.ok()) << store.status();
  const int64_t n = store->num_nodes();
  const int64_t d = store->num_attributes();
  const std::string script = DifferentialScript(n, d);
  const serve::ServerOptions server_options;
  const std::string expected =
      UnshardedTranscript(*store, server_options, script);

  // Disable the fronting cache so the post-death round below cannot be
  // answered from results cached while the shard was alive.
  serve::ServerOptions front_options;
  front_options.cache_capacity = 0;
  serve::PaneServer front(&*router, front_options);
  EXPECT_EQ(ServeScript(&front, script), expected);

  // Kill the middle shard: every fresh top-k degrades (never a partial
  // merge), pairs owned by the dead shard degrade, pairs owned by live
  // shards still answer, and the stats line reports the death.
  shards[1].Stop();
  const store::ShardMeta& dead = shards[1].store->shard();
  std::ostringstream post;
  post << "attr 5 3\n";
  post << "pattr 0 " << dead.attr_begin << "\n";        // dead shard's range
  post << "pattr 0 0\n";                                // shard 0's range
  post << "pair 0 " << (n - 1) << "\n";                 // shard 2's range
  post << "stats\n";
  const std::string out = ServeScript(&front, post.str());
  std::istringstream lines(out);
  std::string line;
  std::vector<std::string> got;
  while (std::getline(lines, line)) got.push_back(line);
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0], "err shard unavailable");
  EXPECT_EQ(got[1], "err shard unavailable");
  EXPECT_EQ(got[2].find("pattr 0 0 ok "), 0u) << got[2];
  EXPECT_EQ(got[3].find("pair 0 "), 0u) << got[3];
  EXPECT_NE(got[3].find(" ok "), std::string::npos) << got[3];
  EXPECT_NE(got[4].find("mode=router shards=3"), std::string::npos) << got[4];
  EXPECT_NE(got[4].find("shard1.alive=0"), std::string::npos) << got[4];
  EXPECT_NE(got[4].find("shard0.alive=1"), std::string::npos) << got[4];

  shards[0].Stop();
  shards[2].Stop();
  for (const std::string& path : paths) std::filesystem::remove(path);
}

}  // namespace
}  // namespace pane
