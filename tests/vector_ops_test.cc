// Direct unit tests for the BLAS-1 kernels under the CCD hot loops.
#include "src/matrix/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/random.h"

namespace pane {
namespace {

TEST(DotTest, HandComputed) {
  const double x[] = {1, 2, 3};
  const double y[] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(x, y, 3), 32.0);
}

TEST(DotTest, UnrolledTailHandling) {
  // Lengths around the 4-way unroll boundary.
  std::vector<double> x(11), y(11);
  double expected = 0.0;
  for (int i = 0; i < 11; ++i) {
    x[static_cast<size_t>(i)] = i + 1;
    y[static_cast<size_t>(i)] = 2 * i - 3;
    expected += (i + 1) * (2 * i - 3);
  }
  for (int64_t n : {1, 2, 3, 4, 5, 7, 8, 11}) {
    double partial = 0.0;
    for (int64_t i = 0; i < n; ++i) partial += x[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
    EXPECT_DOUBLE_EQ(Dot(x.data(), y.data(), n), partial) << "n=" << n;
  }
  EXPECT_DOUBLE_EQ(Dot(x.data(), y.data(), 11), expected);
}

TEST(DotTest, ZeroLength) {
  EXPECT_DOUBLE_EQ(Dot(nullptr, nullptr, 0), 0.0);
}

TEST(AxpyTest, HandComputed) {
  const double x[] = {1, 2, 3};
  double y[] = {10, 20, 30};
  Axpy(2.0, x, y, 3);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(ScalTest, Scales) {
  double x[] = {1, -2, 4};
  Scal(-0.5, x, 3);
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], -2.0);
}

TEST(NormTest, Pythagorean) {
  const double x[] = {3, 4};
  EXPECT_DOUBLE_EQ(Norm2(x, 2), 5.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(x, 2), 25.0);
}

TEST(CopyTest, Copies) {
  const double src[] = {1, 2, 3};
  double dst[3] = {0, 0, 0};
  Copy(src, dst, 3);
  EXPECT_DOUBLE_EQ(dst[1], 2.0);
}

TEST(NormalizeL2Test, UnitNormAfter) {
  double x[] = {3, 0, 4};
  const double norm = NormalizeL2(x, 3);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_DOUBLE_EQ(Norm2(x, 3), 1.0);
  EXPECT_DOUBLE_EQ(x[0], 0.6);
}

TEST(NormalizeL2Test, ZeroVectorUntouched) {
  double x[] = {0, 0};
  EXPECT_DOUBLE_EQ(NormalizeL2(x, 2), 0.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(DotTest, ConsistentWithNaiveOnRandomData) {
  Rng rng(3);
  std::vector<double> x(1000), y(1000);
  for (size_t i = 0; i < 1000; ++i) {
    x[i] = rng.Gaussian();
    y[i] = rng.Gaussian();
  }
  double naive = 0.0;
  for (size_t i = 0; i < 1000; ++i) naive += x[i] * y[i];
  EXPECT_NEAR(Dot(x.data(), y.data(), 1000), naive, 1e-9 * std::fabs(naive));
}

}  // namespace
}  // namespace pane
