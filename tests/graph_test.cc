// Tests for the attributed graph container and builder.
#include "src/graph/graph.h"

#include <gtest/gtest.h>

namespace pane {
namespace {

AttributedGraph PaperExampleGraph() {
  // The running example of Figure 1: 6 nodes v1..v6 (0-indexed 0..5),
  // 3 attributes r1..r3 (0..2). Edges read off the figure: a small directed
  // cycle structure among v1..v6 with v1, v2 attribute-less.
  GraphBuilder builder(6, 3);
  builder.AddEdge(0, 2).AddEdge(2, 0);  // v1 <-> v3
  builder.AddEdge(0, 4).AddEdge(4, 0);  // v1 <-> v5
  builder.AddEdge(1, 2);                // v2 -> v3
  builder.AddEdge(2, 3);                // v3 -> v4
  builder.AddEdge(3, 0);                // v4 -> v1
  builder.AddEdge(4, 5);                // v5 -> v6
  builder.AddEdge(5, 3);                // v6 -> v4
  builder.AddNodeAttribute(2, 0, 1.0);  // v3 - r1
  builder.AddNodeAttribute(3, 0, 1.0);  // v4 - r1
  builder.AddNodeAttribute(4, 0, 1.0);  // v5 - r1
  builder.AddNodeAttribute(2, 1, 1.0);  // v3 - r2
  builder.AddNodeAttribute(4, 1, 1.0);  // v5 - r2
  builder.AddNodeAttribute(5, 2, 1.0);  // v6 - r3
  builder.AddLabel(0, 0).AddLabel(1, 0).AddLabel(2, 1);
  return builder.Build(false).ValueOrDie();
}

TEST(GraphBuilderTest, BasicCounts) {
  const AttributedGraph g = PaperExampleGraph();
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_EQ(g.num_edges(), 9);
  EXPECT_EQ(g.num_attributes(), 3);
  EXPECT_EQ(g.num_attribute_entries(), 6);
  EXPECT_EQ(g.num_label_classes(), 2);
  EXPECT_FALSE(g.undirected());
}

TEST(GraphBuilderTest, SelfLoopsDropped) {
  GraphBuilder builder(3, 1);
  builder.AddEdge(0, 0).AddEdge(0, 1);
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphBuilderTest, DuplicateEdgesCollapseToUnitWeight) {
  GraphBuilder builder(3, 1);
  builder.AddEdge(0, 1).AddEdge(0, 1).AddEdge(0, 1);
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.adjacency().At(0, 1), 1.0);
}

TEST(GraphBuilderTest, DuplicateAttributeEntriesSum) {
  GraphBuilder builder(2, 2);
  builder.AddEdge(0, 1);
  builder.AddNodeAttribute(0, 1, 1.5).AddNodeAttribute(0, 1, 0.5);
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  EXPECT_DOUBLE_EQ(g.attributes().At(0, 1), 2.0);
}

TEST(GraphBuilderTest, OutOfRangeDeferredToBuild) {
  GraphBuilder builder(2, 1);
  builder.AddEdge(0, 5);
  EXPECT_FALSE(builder.Build(false).ok());

  GraphBuilder builder2(2, 1);
  builder2.AddNodeAttribute(0, 3, 1.0);
  EXPECT_FALSE(builder2.Build(false).ok());
}

TEST(GraphBuilderTest, NonPositiveAttributeWeightRejected) {
  GraphBuilder builder(2, 1);
  builder.AddNodeAttribute(0, 0, 0.0);
  EXPECT_FALSE(builder.Build(false).ok());
}

TEST(GraphBuilderTest, LabelsDeduplicatedAndSorted) {
  GraphBuilder builder(2, 1);
  builder.AddEdge(0, 1);
  builder.AddLabel(0, 3).AddLabel(0, 1).AddLabel(0, 3);
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  const auto& labels = g.labels()[0];
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], 1);
  EXPECT_EQ(labels[1], 3);
  EXPECT_EQ(g.num_label_classes(), 4);  // max label + 1
}

TEST(GraphTest, Degrees) {
  const AttributedGraph g = PaperExampleGraph();
  const auto out_deg = g.OutDegrees();
  const auto in_deg = g.InDegrees();
  EXPECT_EQ(out_deg[0], 2);  // v1 -> v3, v5
  EXPECT_EQ(out_deg[1], 1);  // v2 -> v3
  EXPECT_EQ(in_deg[0], 3);   // from v3, v4, v5
  EXPECT_EQ(in_deg[2], 2);   // from v1, v2
}

TEST(GraphTest, TransposedAdjacencyConsistent) {
  const AttributedGraph g = PaperExampleGraph();
  const DenseMatrix a = g.adjacency().ToDense();
  const DenseMatrix at = g.adjacency_transposed().ToDense();
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) EXPECT_EQ(a(i, j), at(j, i));
  }
}

TEST(GraphTest, RandomWalkMatrixRowStochastic) {
  const AttributedGraph g = PaperExampleGraph();
  const auto sums = g.RandomWalkMatrix().RowSums();
  for (int64_t v = 0; v < 6; ++v) {
    EXPECT_NEAR(sums[static_cast<size_t>(v)], 1.0, 1e-15);
  }
}

TEST(GraphTest, DanglingNodeGetsAbsorbingSelfLoop) {
  GraphBuilder builder(3, 1);
  builder.AddEdge(0, 1).AddEdge(0, 2);  // nodes 1, 2 dangling
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  const CsrMatrix p = g.RandomWalkMatrix();
  EXPECT_DOUBLE_EQ(p.At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.At(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(p.At(0, 0), 0.0);  // non-dangling rows get no self-loop
  EXPECT_DOUBLE_EQ(p.At(0, 1), 0.5);
}

TEST(GraphTest, UndirectedConventionMirrorsEdges) {
  GraphBuilder builder(3, 1);
  builder.AddUndirectedEdge(0, 1).AddUndirectedEdge(1, 2);
  const AttributedGraph g = builder.Build(true).ValueOrDie();
  EXPECT_TRUE(g.undirected());
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_DOUBLE_EQ(g.adjacency().At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.adjacency().At(1, 0), 1.0);
}

TEST(GraphTest, SummaryMentionsCounts) {
  const AttributedGraph g = PaperExampleGraph();
  const std::string s = g.Summary();
  EXPECT_NE(s.find("n=6"), std::string::npos);
  EXPECT_NE(s.find("directed"), std::string::npos);
}

}  // namespace
}  // namespace pane
