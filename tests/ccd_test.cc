// Tests for the CCD refinement (Algorithms 4 and 8): monotone objective
// descent, incremental-residual correctness (Equations 18-20 vs full
// recomputation), and serial/parallel agreement.
#include "src/core/ccd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/core/apmi.h"
#include "src/core/greedy_init.h"
#include "src/matrix/gemm.h"
#include "src/parallel/thread_pool.h"
#include "test_util.h"

namespace pane {
namespace {

AffinityMatrices TestAffinity(int64_t n = 250, uint64_t seed = 51) {
  return ComputeAffinity(testing::SmallSbm(seed, n), 0.5, 0.015).ValueOrDie();
}

double ResidualConsistencyError(const EmbeddingState& s,
                                const AffinityMatrices& affinity) {
  DenseMatrix sf_expected, sb_expected;
  GemmTransBAddScaled(s.xf, s.y, 1.0, affinity.forward, -1.0, &sf_expected);
  GemmTransBAddScaled(s.xb, s.y, 1.0, affinity.backward, -1.0, &sb_expected);
  return s.sf.MaxAbsDiff(sf_expected) + s.sb.MaxAbsDiff(sb_expected);
}

TEST(CcdTest, ObjectiveNonIncreasingFromRandomInit) {
  const AffinityMatrices affinity = TestAffinity();
  auto state = RandomInit(affinity, 16, 5).ValueOrDie();
  std::vector<double> trace;
  trace.push_back(Objective(state));
  CcdOptions options;
  options.iterations = 8;
  options.objective_trace = &trace;
  ASSERT_TRUE(CcdRefine(&state, options).ok());
  ASSERT_EQ(trace.size(), 9u);
  for (size_t i = 1; i < trace.size(); ++i) {
    // Exact coordinate minimization can never increase the objective.
    EXPECT_LE(trace[i], trace[i - 1] * (1.0 + 1e-12)) << "iteration " << i;
  }
  EXPECT_LT(trace.back(), 0.9 * trace.front());
}

TEST(CcdTest, ObjectiveNonIncreasingFromGreedyInit) {
  const AffinityMatrices affinity = TestAffinity();
  auto state = GreedyInit(affinity, 16, 6).ValueOrDie();
  std::vector<double> trace;
  trace.push_back(Objective(state));
  CcdOptions options;
  options.iterations = 5;
  options.objective_trace = &trace;
  ASSERT_TRUE(CcdRefine(&state, options).ok());
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] * (1.0 + 1e-12));
  }
}

TEST(CcdTest, IncrementalResidualsMatchRecomputation) {
  // The dynamic maintenance of Equations (18)-(20) must leave Sf, Sb equal
  // to a from-scratch Xf Y^T - F' at every exit point.
  const AffinityMatrices affinity = TestAffinity();
  auto state = GreedyInit(affinity, 24, 6).ValueOrDie();
  CcdOptions options;
  options.iterations = 3;
  ASSERT_TRUE(CcdRefine(&state, options).ok());
  EXPECT_LT(ResidualConsistencyError(state, affinity), 1e-8);
}

TEST(CcdTest, ParallelMatchesSerialQuality) {
  const AffinityMatrices affinity = TestAffinity();
  auto serial_state = GreedyInit(affinity, 16, 6).ValueOrDie();
  auto parallel_state = serial_state;  // identical starting point

  CcdOptions serial_options;
  serial_options.iterations = 4;
  ASSERT_TRUE(CcdRefine(&serial_state, serial_options).ok());

  ThreadPool pool(4);
  CcdOptions parallel_options;
  parallel_options.iterations = 4;
  parallel_options.pool = &pool;
  ASSERT_TRUE(CcdRefine(&parallel_state, parallel_options).ok());

  // Block-parallel CCD visits coordinates in a different order, so results
  // differ numerically but converge to the same quality (Section 4.2).
  const double serial_obj = Objective(serial_state);
  const double parallel_obj = Objective(parallel_state);
  EXPECT_NEAR(parallel_obj, serial_obj, 0.05 * serial_obj);
  EXPECT_LT(ResidualConsistencyError(parallel_state, affinity), 1e-8);
}

TEST(CcdTest, ZeroIterationsIsNoop) {
  const AffinityMatrices affinity = TestAffinity(120, 52);
  auto state = GreedyInit(affinity, 8, 4).ValueOrDie();
  const DenseMatrix xf_before = state.xf;
  CcdOptions options;
  options.iterations = 0;
  ASSERT_TRUE(CcdRefine(&state, options).ok());
  EXPECT_EQ(state.xf.MaxAbsDiff(xf_before), 0.0);
}

TEST(CcdTest, HandlesRankDeficientYColumns) {
  // k/2 > d forces zero Y columns; updates on those coordinates must be
  // skipped rather than divide by zero.
  Rng rng(53);
  AffinityMatrices affinity;
  affinity.forward.Resize(40, 3);
  affinity.backward.Resize(40, 3);
  affinity.forward.FillUniform(&rng, 0.0, 1.0);
  affinity.backward.FillUniform(&rng, 0.0, 1.0);
  auto state = GreedyInit(affinity, 16, 4).ValueOrDie();  // k/2 = 8 > d = 3
  CcdOptions options;
  options.iterations = 3;
  ASSERT_TRUE(CcdRefine(&state, options).ok());
  for (int64_t i = 0; i < state.xf.rows(); ++i) {
    for (int64_t j = 0; j < state.xf.cols(); ++j) {
      EXPECT_TRUE(std::isfinite(state.xf(i, j)));
    }
  }
}

TEST(CcdTest, RejectsInconsistentShapes) {
  EmbeddingState state;
  state.xf.Resize(10, 4);
  state.xb.Resize(10, 4);
  state.y.Resize(5, 4);
  state.sf.Resize(10, 5);
  state.sb.Resize(9, 5);  // wrong
  CcdOptions options;
  EXPECT_FALSE(CcdRefine(&state, options).ok());
}

TEST(CcdTest, GreedyBeatsRandomAtEqualIterations) {
  // The Section 5.7 ablation in miniature: same CCD budget, greedy seeding
  // lands at a lower objective.
  const AffinityMatrices affinity = TestAffinity();
  auto greedy = GreedyInit(affinity, 16, 6).ValueOrDie();
  auto random = RandomInit(affinity, 16, 5).ValueOrDie();
  CcdOptions options;
  options.iterations = 2;
  ASSERT_TRUE(CcdRefine(&greedy, options).ok());
  ASSERT_TRUE(CcdRefine(&random, options).ok());
  EXPECT_LT(Objective(greedy), Objective(random));
}

}  // namespace
}  // namespace pane
