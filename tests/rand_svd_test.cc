// Tests for the randomized SVD (dense and sparse front-ends): exact
// recovery on low-rank inputs, near-optimal truncation error, rank padding.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/matrix/csr_matrix.h"
#include "src/matrix/gemm.h"
#include "src/matrix/rand_svd.h"
#include "src/matrix/rand_svd_sparse.h"

namespace pane {
namespace {

double OrthonormalityError(const DenseMatrix& q) {
  DenseMatrix gram;
  GemmTransA(q, q, &gram);
  gram.Sub(DenseMatrix::Identity(q.cols()));
  return gram.FrobeniusNorm();
}

// Builds an exactly rank-r matrix n x d.
DenseMatrix LowRankMatrix(int64_t n, int64_t d, int64_t r, Rng* rng) {
  DenseMatrix a(n, r), b(r, d), out;
  a.FillGaussian(rng);
  b.FillGaussian(rng);
  Gemm(a, b, &out);
  return out;
}

DenseMatrix Reconstruct(const DenseMatrix& u, const std::vector<double>& sigma,
                        const DenseMatrix& v) {
  DenseMatrix us = u;
  for (int64_t i = 0; i < us.rows(); ++i) {
    for (int64_t j = 0; j < us.cols(); ++j) {
      us(i, j) *= sigma[static_cast<size_t>(j)];
    }
  }
  DenseMatrix rebuilt;
  GemmTransB(us, v, &rebuilt);
  return rebuilt;
}

TEST(RandSvdTest, RecoversExactLowRank) {
  Rng rng(1);
  const DenseMatrix m = LowRankMatrix(80, 40, 5, &rng);
  RandSvdOptions options;
  options.power_iters = 4;
  DenseMatrix u, v;
  std::vector<double> sigma;
  ASSERT_TRUE(RandSvd(m, 5, options, &u, &sigma, &v).ok());
  const DenseMatrix rebuilt = Reconstruct(u, sigma, v);
  EXPECT_LT(rebuilt.MaxAbsDiff(m) / m.FrobeniusNorm(), 1e-8);
  EXPECT_LT(OrthonormalityError(u), 1e-9);
  EXPECT_LT(OrthonormalityError(v), 1e-9);
}

TEST(RandSvdTest, SigmaNonIncreasing) {
  Rng rng(2);
  DenseMatrix m(60, 30);
  m.FillGaussian(&rng);
  RandSvdOptions options;
  DenseMatrix u, v;
  std::vector<double> sigma;
  ASSERT_TRUE(RandSvd(m, 10, options, &u, &sigma, &v).ok());
  for (size_t j = 1; j < sigma.size(); ++j) {
    EXPECT_GE(sigma[j - 1], sigma[j] - 1e-12);
  }
}

TEST(RandSvdTest, NearOptimalErrorOnNoisyLowRank) {
  Rng rng(3);
  DenseMatrix m = LowRankMatrix(100, 50, 8, &rng);
  DenseMatrix noise(100, 50);
  noise.FillGaussian(&rng, 0.0, 0.01);
  m.Add(noise);
  RandSvdOptions options;
  options.power_iters = 6;
  DenseMatrix u, v;
  std::vector<double> sigma;
  ASSERT_TRUE(RandSvd(m, 8, options, &u, &sigma, &v).ok());
  const DenseMatrix rebuilt = Reconstruct(u, sigma, v);
  DenseMatrix diff = rebuilt;
  diff.Sub(m);
  // Residual should be on the order of the injected noise, far below signal.
  EXPECT_LT(diff.FrobeniusNorm() / m.FrobeniusNorm(), 0.02);
}

TEST(RandSvdTest, KBeyondRankPadsOrthonormal) {
  Rng rng(4);
  const DenseMatrix m = LowRankMatrix(50, 20, 3, &rng);
  RandSvdOptions options;
  DenseMatrix u, v;
  std::vector<double> sigma;
  ASSERT_TRUE(RandSvd(m, 10, options, &u, &sigma, &v).ok());
  ASSERT_EQ(static_cast<int64_t>(sigma.size()), 10);
  EXPECT_LT(OrthonormalityError(u), 1e-8);
  EXPECT_LT(OrthonormalityError(v), 1e-8);
  // Trailing singular values vanish.
  for (size_t j = 4; j < sigma.size(); ++j) EXPECT_LT(sigma[j], 1e-7);
}

TEST(RandSvdTest, InvalidInputs) {
  DenseMatrix m(5, 5), u, v;
  std::vector<double> sigma;
  EXPECT_FALSE(RandSvd(m, 0, RandSvdOptions{}, &u, &sigma, &v).ok());
  DenseMatrix empty;
  EXPECT_FALSE(RandSvd(empty, 2, RandSvdOptions{}, &u, &sigma, &v).ok());
}

TEST(RandSvdSparseTest, MatchesDenseOnSameMatrix) {
  Rng rng(5);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 600; ++i) {
    triplets.push_back(
        Triplet{static_cast<int64_t>(rng.UniformInt(uint64_t{60})),
                static_cast<int64_t>(rng.UniformInt(uint64_t{40})),
                rng.Gaussian()});
  }
  const CsrMatrix a = CsrMatrix::FromTriplets(60, 40, triplets).ValueOrDie();
  const CsrMatrix at = a.Transposed();
  RandSvdOptions options;
  options.power_iters = 8;

  DenseMatrix u_s, v_s, u_d, v_d;
  std::vector<double> sigma_s, sigma_d;
  ASSERT_TRUE(RandSvdSparse(a, at, 6, options, &u_s, &sigma_s, &v_s).ok());
  ASSERT_TRUE(RandSvd(a.ToDense(), 6, options, &u_d, &sigma_d, &v_d).ok());
  // Singular values agree (vectors may differ by sign/rotation).
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(sigma_s[j], sigma_d[j], 1e-6 * (1.0 + sigma_d[j]));
  }
  // Both reconstructions approximate A equally well.
  const double err_s =
      Reconstruct(u_s, sigma_s, v_s).MaxAbsDiff(a.ToDense());
  const double err_d =
      Reconstruct(u_d, sigma_d, v_d).MaxAbsDiff(a.ToDense());
  EXPECT_NEAR(err_s, err_d, 0.2 * (err_s + err_d) + 1e-9);
}

TEST(RandSvdSparseTest, TransposeShapeChecked) {
  const CsrMatrix a = CsrMatrix::FromTriplets(4, 3, {{0, 0, 1.0}}).ValueOrDie();
  DenseMatrix u, v;
  std::vector<double> sigma;
  // Passing A instead of A^T must be rejected.
  EXPECT_FALSE(RandSvdSparse(a, a, 2, RandSvdOptions{}, &u, &sigma, &v).ok());
}

TEST(RandSvdTest, DeterministicForFixedSeed) {
  Rng rng(6);
  const DenseMatrix m = LowRankMatrix(30, 20, 4, &rng);
  RandSvdOptions options;
  options.seed = 777;
  DenseMatrix u1, v1, u2, v2;
  std::vector<double> s1, s2;
  ASSERT_TRUE(RandSvd(m, 4, options, &u1, &s1, &v1).ok());
  ASSERT_TRUE(RandSvd(m, 4, options, &u2, &s2, &v2).ok());
  EXPECT_EQ(u1.MaxAbsDiff(u2), 0.0);
  EXPECT_EQ(v1.MaxAbsDiff(v2), 0.0);
}

}  // namespace
}  // namespace pane
