// MergeTopK: the k-way merge under the (score desc, index asc) ranking
// order that turns per-shard top-k lists back into the exact answer a
// single scan over the union would have produced. The property every test
// here circles is equivalence with SelectTopK over the concatenated
// candidates — that equivalence is what makes sharded serving
// byte-identical to unsharded serving.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "src/common/topk.h"

namespace pane {
namespace {

Ranking Concat(const std::vector<Ranking>& lists) {
  Ranking all;
  for (const Ranking& list : lists) {
    all.insert(all.end(), list.begin(), list.end());
  }
  return all;
}

void ExpectExactlyEqual(const Ranking& expected, const Ranking& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first) << "rank " << i;
    EXPECT_EQ(expected[i].second, actual[i].second) << "rank " << i;
  }
}

TEST(MergeTopKTest, MergesSortedListsInRankOrder) {
  const std::vector<Ranking> lists = {
      {{0, 9.0}, {2, 5.0}, {4, 1.0}},
      {{10, 8.0}, {11, 6.0}},
      {{20, 7.0}, {21, 2.0}},
  };
  const Ranking merged = MergeTopK(lists, 4);
  ExpectExactlyEqual({{0, 9.0}, {10, 8.0}, {20, 7.0}, {11, 6.0}}, merged);
}

TEST(MergeTopKTest, CrossShardTiesResolveByAscendingGlobalIndex) {
  // Equal scores straddling the shard boundary: the higher shard holds the
  // *lower* global indices here, so a naive shard-order merge would get
  // this wrong — only the index tie-break produces 3 < 7 < 12 < 15.
  const std::vector<Ranking> lists = {
      {{7, 2.5}, {3, 2.5}},   // NOT sorted-by-index within equal scores...
      {{12, 2.5}, {15, 2.5}},
  };
  // ...so fix list 0 to the order SelectTopK would emit (index asc).
  const std::vector<Ranking> sorted_lists = {
      {{3, 2.5}, {7, 2.5}},
      {{12, 2.5}, {15, 2.5}},
  };
  const Ranking merged = MergeTopK(sorted_lists, 4);
  ExpectExactlyEqual({{3, 2.5}, {7, 2.5}, {12, 2.5}, {15, 2.5}}, merged);
  ExpectExactlyEqual(SelectTopK(Concat(sorted_lists), 4), merged);
}

TEST(MergeTopKTest, EmptyShardListsAreSkipped) {
  const std::vector<Ranking> lists = {
      {}, {{5, 3.0}, {6, 1.0}}, {}, {{9, 2.0}}, {}};
  ExpectExactlyEqual({{5, 3.0}, {9, 2.0}, {6, 1.0}}, MergeTopK(lists, 3));
}

TEST(MergeTopKTest, AllEmptyOrNoLists) {
  EXPECT_TRUE(MergeTopK({}, 5).empty());
  EXPECT_TRUE(MergeTopK({{}, {}, {}}, 5).empty());
}

TEST(MergeTopKTest, KLargerThanTotalCandidates) {
  const std::vector<Ranking> lists = {{{1, 4.0}}, {{2, 6.0}}, {{3, 5.0}}};
  const Ranking merged = MergeTopK(lists, 100);
  ExpectExactlyEqual({{2, 6.0}, {3, 5.0}, {1, 4.0}}, merged);
}

TEST(MergeTopKTest, KZeroAndNegativeReturnEmpty) {
  const std::vector<Ranking> lists = {{{1, 4.0}}, {{2, 6.0}}};
  EXPECT_TRUE(MergeTopK(lists, 0).empty());
  EXPECT_TRUE(MergeTopK(lists, -3).empty());
}

TEST(MergeTopKTest, EquivalentToSelectTopKOverTheUnion) {
  // Randomized shard splits with heavy score collisions (scores drawn from
  // a few buckets) — the exact situation where only the strict total order
  // keeps the merged answer unique.
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> score_bucket(0, 6);
  std::uniform_int_distribution<int> shard_count(1, 5);
  for (int trial = 0; trial < 50; ++trial) {
    const int shards = shard_count(rng);
    const int64_t n = 40;
    // Contiguous ranges like a real shard plan; every index unique.
    std::vector<Ranking> lists(static_cast<size_t>(shards));
    for (int64_t id = 0; id < n; ++id) {
      const size_t shard = static_cast<size_t>(id * shards / n);
      lists[shard].emplace_back(id, 0.5 * score_bucket(rng));
    }
    const int64_t k = 1 + trial % 17;
    std::vector<Ranking> tops;
    for (Ranking& list : lists) {
      tops.push_back(SelectTopK(std::move(list), k));
    }
    const Ranking merged = MergeTopK(tops, k);
    // The union of per-shard top-k always contains the global top-k.
    const Ranking expected = SelectTopK(Concat(tops), k);
    ExpectExactlyEqual(expected, merged);
  }
}

}  // namespace
}  // namespace pane
