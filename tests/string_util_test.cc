// Tests for string helpers and the flag parser.
#include "src/common/string_util.h"

#include <gtest/gtest.h>

#include "src/common/flags.h"

namespace pane {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(SplitTest, NoSeparator) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  const auto parts = SplitWhitespace("  a \t b\n  c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(TrimTest, Both) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", "file.txt"));
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("  -7 "), -7);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.015"), 0.015);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e-3"), 1e-3);
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("1.0x").ok());
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StrFormatTest, Formats) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(FormatCountTest, Units) {
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(2700), "2.7K");
  EXPECT_EQ(FormatCount(13700000), "13.7M");
  EXPECT_EQ(FormatCount(978200000LL * 2), "2.0B");
}

TEST(ToLowerTest, Ascii) { EXPECT_EQ(ToLower("MaG"), "mag"); }

TEST(FlagSetTest, DefaultsAndOverrides) {
  FlagSet flags;
  flags.AddInt("k", 128, "budget");
  flags.AddDouble("alpha", 0.5, "stop prob");
  flags.AddString("dataset", "cora", "name");
  flags.AddBool("parallel", false, "use threads");

  const char* argv[] = {"prog", "--k=64", "--alpha", "0.3", "--parallel"};
  ASSERT_TRUE(flags.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("k"), 64);
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha"), 0.3);
  EXPECT_EQ(flags.GetString("dataset"), "cora");
  EXPECT_TRUE(flags.GetBool("parallel"));
}

TEST(FlagSetTest, UnknownFlagFails) {
  FlagSet flags;
  flags.AddInt("k", 1, "k");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagSetTest, BadValueFails) {
  FlagSet flags;
  flags.AddInt("k", 1, "k");
  const char* argv[] = {"prog", "--k=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagSetTest, MissingValueFails) {
  FlagSet flags;
  flags.AddInt("k", 1, "k");
  const char* argv[] = {"prog", "--k"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagSetTest, BoolExplicitValues) {
  FlagSet flags;
  flags.AddBool("x", true, "x");
  const char* argv[] = {"prog", "--x=false"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(flags.GetBool("x"));
}

}  // namespace
}  // namespace pane
