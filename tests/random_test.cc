// Tests for the PRNG stack: determinism, distribution sanity, alias method.
#include "src/common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace pane {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{10});
    ASSERT_LT(v, 10u);
    ++counts[static_cast<size_t>(v)];
  }
  // Each bucket should be near 10000 (chi-square-ish slack).
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-3}, int64_t{3});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(ShuffleTest, ProducesPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Shuffle(&v, &rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(ShuffleTest, ActuallyShuffles) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Shuffle(&v, &rng);
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) fixed_points += (v[static_cast<size_t>(i)] == i);
  EXPECT_LT(fixed_points, 15);
}

TEST(SampleWithoutReplacementTest, DistinctAndInRange) {
  Rng rng(43);
  const auto sample = SampleWithoutReplacement(100, 30, &rng);
  ASSERT_EQ(sample.size(), 30u);
  std::vector<int64_t> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
  EXPECT_GE(sorted.front(), 0);
  EXPECT_LT(sorted.back(), 100);
}

TEST(SampleWithoutReplacementTest, FullSample) {
  Rng rng(47);
  const auto sample = SampleWithoutReplacement(10, 10, &rng);
  std::vector<int64_t> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(53);
  AliasSampler sampler({1.0, 2.0, 3.0, 4.0});
  std::vector<int64_t> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(sampler.Sample(&rng))];
  for (int j = 0; j < 4; ++j) {
    const double expected = (j + 1) / 10.0;
    EXPECT_NEAR(counts[static_cast<size_t>(j)] / static_cast<double>(n),
                expected, 0.01)
        << "bucket " << j;
  }
}

TEST(AliasSamplerTest, SingleBucket) {
  Rng rng(59);
  AliasSampler sampler({5.0});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(&rng), 0);
}

TEST(AliasSamplerTest, ZeroWeightsFallBackToUniform) {
  Rng rng(61);
  AliasSampler sampler({0.0, 0.0, 0.0});
  std::vector<int64_t> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[static_cast<size_t>(sampler.Sample(&rng))];
  for (int j = 0; j < 3; ++j) EXPECT_GT(counts[static_cast<size_t>(j)], 8000);
}

TEST(AliasSamplerTest, ZeroWeightEntryNeverSampled) {
  Rng rng(67);
  AliasSampler sampler({1.0, 0.0, 1.0});
  for (int i = 0; i < 20000; ++i) EXPECT_NE(sampler.Sample(&rng), 1);
}

}  // namespace
}  // namespace pane
