// Tests for the competitor implementations: each baseline must train, emit
// well-formed embeddings, and land in its expected quality band relative to
// chance and to PANE.
#include <gtest/gtest.h>

#include <cmath>

#include "src/baselines/bane.h"
#include "src/baselines/bla_like.h"
#include "src/baselines/lqanr.h"
#include "src/baselines/nrp.h"
#include "src/baselines/tadw.h"
#include "src/tasks/attribute_inference.h"
#include "src/tasks/link_prediction.h"
#include "test_util.h"

namespace pane {
namespace {

TEST(NrpTest, ShapesAndFiniteness) {
  const AttributedGraph g = testing::SmallSbm(81, 300);
  NrpOptions options;
  options.k = 32;
  const auto embedding = TrainNrp(g, options).ValueOrDie();
  EXPECT_EQ(embedding.xf.rows(), 300);
  EXPECT_EQ(embedding.xf.cols(), 16);
  for (int64_t i = 0; i < 20; ++i) {
    for (int64_t j = 0; j < 16; ++j) {
      EXPECT_TRUE(std::isfinite(embedding.xf(i, j)));
      EXPECT_TRUE(std::isfinite(embedding.xb(i, j)));
    }
  }
}

TEST(NrpTest, LinkPredictionAboveChance) {
  const AttributedGraph g = testing::SmallSbm(82, 500);
  const auto split = SplitEdges(g, 0.3, 11).ValueOrDie();
  NrpOptions options;
  options.k = 64;
  const auto embedding = TrainNrp(split.residual_graph, options).ValueOrDie();
  const AucAp result = EvaluateLinkPrediction(
      split, [&](int64_t u, int64_t v) { return embedding.Score(u, v); });
  EXPECT_GT(result.auc, 0.65);
}

TEST(NrpTest, RejectsOddK) {
  const AttributedGraph g = testing::Figure1Graph();
  NrpOptions options;
  options.k = 5;
  EXPECT_FALSE(TrainNrp(g, options).ok());
}

TEST(TadwTest, TrainsOnSmallGraph) {
  const AttributedGraph g = testing::SmallSbm(83, 250);
  TadwOptions options;
  options.k = 32;
  options.als_iterations = 5;
  const auto embedding = TrainTadw(g, options).ValueOrDie();
  EXPECT_EQ(embedding.features.rows(), 250);
  EXPECT_EQ(embedding.features.cols(), 32);
  for (int64_t j = 0; j < 32; ++j) {
    EXPECT_TRUE(std::isfinite(embedding.features(0, j)));
  }
}

TEST(TadwTest, RefusesLargeGraphs) {
  // The densification guard: the paper's "did not finish on large data".
  const AttributedGraph g = testing::SmallSbm(84, 120);
  TadwOptions options;
  options.max_nodes = 100;
  const auto result = TrainTadw(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(TadwTest, LinkPredictionAboveChance) {
  const AttributedGraph g = testing::SmallSbm(85, 400);
  const auto split = SplitEdges(g, 0.3, 12).ValueOrDie();
  TadwOptions options;
  options.k = 32;
  options.als_iterations = 5;
  const auto embedding = TrainTadw(split.residual_graph, options).ValueOrDie();
  const AucAp result = EvaluateLinkPrediction(split, [&](int64_t u, int64_t v) {
    return CosineScore(embedding.features, u, v);
  });
  EXPECT_GT(result.auc, 0.6);
}

TEST(BaneTest, CodesAreBinary) {
  const AttributedGraph g = testing::SmallSbm(86, 200);
  BaneOptions options;
  options.k = 24;
  const auto embedding = TrainBane(g, options).ValueOrDie();
  EXPECT_EQ(embedding.codes.rows(), 200);
  EXPECT_EQ(embedding.codes.cols(), 24);
  for (int64_t i = 0; i < embedding.codes.rows(); ++i) {
    for (int64_t j = 0; j < 24; ++j) {
      const double v = embedding.codes(i, j);
      EXPECT_TRUE(v == 1.0 || v == -1.0) << "entry (" << i << "," << j << ")";
    }
  }
}

TEST(BaneTest, HammingLinkPredictionAboveChance) {
  const AttributedGraph g = testing::SmallSbm(87, 400);
  const auto split = SplitEdges(g, 0.3, 13).ValueOrDie();
  BaneOptions options;
  options.k = 48;
  const auto embedding = TrainBane(split.residual_graph, options).ValueOrDie();
  const AucAp result = EvaluateLinkPrediction(split, [&](int64_t u, int64_t v) {
    return HammingScore(embedding.codes, u, v);
  });
  EXPECT_GT(result.auc, 0.6);
}

TEST(LqanrTest, EntriesOnQuantizedGrid) {
  const AttributedGraph g = testing::SmallSbm(88, 200);
  LqanrOptions options;
  options.k = 16;
  options.bit_width = 2;
  const auto embedding = TrainLqanr(g, options).ValueOrDie();
  ASSERT_GT(embedding.step, 0.0);
  const int64_t grid = 4;  // 2^2
  for (int64_t i = 0; i < embedding.features.rows(); ++i) {
    for (int64_t j = 0; j < embedding.features.cols(); ++j) {
      const double q = embedding.features(i, j) / embedding.step;
      EXPECT_NEAR(q, std::round(q), 1e-9);
      EXPECT_LE(std::fabs(q), static_cast<double>(grid) + 1e-9);
    }
  }
}

TEST(LqanrTest, BitWidthValidation) {
  const AttributedGraph g = testing::Figure1Graph();
  LqanrOptions options;
  options.bit_width = 0;
  EXPECT_FALSE(TrainLqanr(g, options).ok());
  options.bit_width = 9;
  EXPECT_FALSE(TrainLqanr(g, options).ok());
}

TEST(BlaLikeTest, TruePairsOutscoreRandomPairs) {
  const AttributedGraph g = testing::SmallSbm(89, 400);
  const auto split = SplitAttributes(g, 0.2, 14).ValueOrDie();
  const auto model = TrainBlaLike(split.train_graph, BlaLikeOptions{}).ValueOrDie();
  const AucAp result = EvaluateAttributeInference(
      split, [&](int64_t v, int64_t r) { return model.Score(v, r); });
  EXPECT_GT(result.auc, 0.6);
}

TEST(BlaLikeTest, Validation) {
  const AttributedGraph g = testing::Figure1Graph();
  BlaLikeOptions options;
  options.hops = 0;
  EXPECT_FALSE(TrainBlaLike(g, options).ok());
  options.hops = 2;
  options.decay = 1.5;
  EXPECT_FALSE(TrainBlaLike(g, options).ok());
}

}  // namespace
}  // namespace pane
