// Round-trip and corrupt-input tests for the graph text / binary / edge-list
// persistence layer.
#include "src/graph/graph_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/api/node_embedding.h"
#include "src/graph/generators.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pane_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void WriteFile(const std::string& path, const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }

  std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open());
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  // Writes a minimal text-layout graph directory with the given edges /
  // attrs file contents.
  void WriteTextGraph(const std::string& dir, const std::string& edges,
                      const std::string& attrs,
                      const std::string& meta = "4 3 1\n") {
    std::filesystem::create_directories(dir);
    WriteFile(dir + "/meta.txt", meta);
    WriteFile(dir + "/edges.txt", edges);
    WriteFile(dir + "/attrs.txt", attrs);
  }

  std::filesystem::path dir_;
};

AttributedGraph SampleGraph() {
  SbmParams params;
  params.num_nodes = 120;
  params.num_edges = 500;
  params.num_attributes = 30;
  params.num_attr_entries = 400;
  params.num_communities = 4;
  params.seed = 9;
  return GenerateAttributedSbm(params);
}

void ExpectGraphsEqual(const AttributedGraph& a, const AttributedGraph& b) {
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_attributes(), b.num_attributes());
  EXPECT_EQ(a.num_attribute_entries(), b.num_attribute_entries());
  EXPECT_EQ(a.undirected(), b.undirected());
  EXPECT_EQ(a.adjacency().ToDense().MaxAbsDiff(b.adjacency().ToDense()), 0.0);
  EXPECT_LT(a.attributes().ToDense().MaxAbsDiff(b.attributes().ToDense()),
            1e-14);
  ASSERT_EQ(a.labels().size(), b.labels().size());
  for (size_t v = 0; v < a.labels().size(); ++v) {
    EXPECT_EQ(a.labels()[v], b.labels()[v]) << "node " << v;
  }
}

TEST_F(GraphIoTest, TextRoundTrip) {
  const AttributedGraph g = SampleGraph();
  const std::string dir = (dir_ / "text").string();
  ASSERT_TRUE(SaveGraphText(g, dir).ok());
  auto loaded = LoadGraphText(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectGraphsEqual(g, *loaded);
}

TEST_F(GraphIoTest, BinaryRoundTrip) {
  const AttributedGraph g = SampleGraph();
  const std::string path = (dir_ / "graph.bin").string();
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  auto loaded = LoadGraphBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectGraphsEqual(g, *loaded);
}

TEST_F(GraphIoTest, LoadTextMissingDirectoryFails) {
  EXPECT_TRUE(LoadGraphText((dir_ / "nope").string()).status().IsIOError());
}

TEST_F(GraphIoTest, LoadBinaryMissingFileFails) {
  EXPECT_TRUE(
      LoadGraphBinary((dir_ / "nope.bin").string()).status().IsIOError());
}

TEST_F(GraphIoTest, LoadBinaryRejectsGarbage) {
  const std::string path = (dir_ / "junk.bin").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a graph", f);
    std::fclose(f);
  }
  const auto loaded = LoadGraphBinary(path);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(GraphIoTest, TextParallelLoadMatchesSequential) {
  const AttributedGraph g = SampleGraph();
  const std::string dir = Path("text_par");
  ASSERT_TRUE(SaveGraphText(g, dir).ok());
  ThreadPool pool(4);
  auto loaded = LoadGraphText(dir, &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectGraphsEqual(g, *loaded);
}

TEST_F(GraphIoTest, TextRejectsMalformedEdgeLineWithLineNumber) {
  const std::string dir = Path("bad_edges");
  WriteTextGraph(dir, "0 1\n1 zzz\n2 3\n", "");
  const auto loaded = LoadGraphText(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("edges.txt"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
      << loaded.status();
}

TEST_F(GraphIoTest, TextRejectsTrailingGarbageOnEdgeLine) {
  const std::string dir = Path("bad_edges2");
  WriteTextGraph(dir, "0 1\n1 2 stray\n", "");
  const auto loaded = LoadGraphText(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST_F(GraphIoTest, TextRejectsMalformedAttrLine) {
  const std::string dir = Path("bad_attrs");
  WriteTextGraph(dir, "0 1\n", "0 0 0.5\n1 2 nope\n");
  const auto loaded = LoadGraphText(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("attrs.txt"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
      << loaded.status();
}

TEST_F(GraphIoTest, TextRejectsMalformedLabelLine) {
  const std::string dir = Path("bad_labels");
  WriteTextGraph(dir, "0 1\n", "");
  WriteFile(dir + "/labels.txt", "0 1\n1 oops\n");
  const auto loaded = LoadGraphText(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("labels.txt"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST_F(GraphIoTest, TextRejectsMalformedMeta) {
  const std::string dir = Path("bad_meta");
  WriteTextGraph(dir, "0 1\n", "", "4 three 1\n");
  EXPECT_TRUE(LoadGraphText(dir).status().IsInvalidArgument());
  const std::string dir2 = Path("bad_meta2");
  WriteTextGraph(dir2, "0 1\n", "", "4 3 7\n");  // directed must be 0|1
  EXPECT_TRUE(LoadGraphText(dir2).status().IsInvalidArgument());
}

TEST_F(GraphIoTest, TextRejectsHugeMetaCountsWithoutAllocating) {
  const std::string dir = Path("huge_meta");
  WriteTextGraph(dir, "0 1\n", "", "999999999999999 1 1\n");
  const auto loaded = LoadGraphText(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("2^31"), std::string::npos);
}

TEST_F(GraphIoTest, TextRejectsNanAttributeWeight) {
  const std::string dir = Path("nan_attrs");
  WriteTextGraph(dir, "0 1\n", "0 0 nan\n");
  EXPECT_FALSE(LoadGraphText(dir).ok());
}

TEST_F(GraphIoTest, TextRejectsOutOfRangeEdge) {
  const std::string dir = Path("oob_edges");
  WriteTextGraph(dir, "0 9\n", "");  // node 9 outside n=4
  const auto loaded = LoadGraphText(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange)
      << loaded.status();
}

// --- corrupt binary snapshots --------------------------------------------

TEST_F(GraphIoTest, BinaryTruncatedAtEveryPrefixFailsCleanly) {
  const AttributedGraph g = SampleGraph();
  const std::string path = Path("good.bin");
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  const std::string bytes = ReadFile(path);
  // Every strict prefix must produce a Status error (never a crash or a
  // graph). Step through a spread of cut points including all short ones.
  for (size_t cut = 0; cut < bytes.size();
       cut += (cut < 64 ? 1 : bytes.size() / 37)) {
    const std::string truncated_path = Path("truncated.bin");
    WriteFile(truncated_path, bytes.substr(0, cut));
    const auto loaded = LoadGraphBinary(truncated_path);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes parsed";
  }
}

TEST_F(GraphIoTest, BinaryOversizedLengthFieldIsErrorNotAllocation) {
  // magic + flag + rows/cols + a 2^60 indptr length: must fail fast on the
  // bounds check, not attempt an 8 EiB resize.
  const AttributedGraph g = SampleGraph();
  const std::string seed_path = Path("seed.bin");
  ASSERT_TRUE(SaveGraphBinary(g, seed_path).ok());
  std::string bytes = ReadFile(seed_path);
  const size_t indptr_len_offset = 8 + 1 + 8 + 8;
  const uint64_t huge = uint64_t{1} << 60;
  std::memcpy(&bytes[indptr_len_offset], &huge, sizeof(huge));
  const std::string path = Path("oversized.bin");
  WriteFile(path, bytes);
  const auto loaded = LoadGraphBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("exceeds"), std::string::npos);
}

TEST_F(GraphIoTest, BinaryOutOfRangeColumnIndexRejected) {
  const AttributedGraph g = SampleGraph();
  const std::string path = Path("oob.bin");
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  std::string bytes = ReadFile(path);
  // Layout: magic(8) flag(1) rows(8) cols(8) indptr_len(8)
  //         indptr[(n+1) * 8] indices_len(8) indices[0]...
  const size_t n = static_cast<size_t>(g.num_nodes());
  const size_t first_index_offset = 8 + 1 + 8 + 8 + 8 + (n + 1) * 8 + 8;
  const int32_t bad = 0x7fffffff;
  std::memcpy(&bytes[first_index_offset], &bad, sizeof(bad));
  WriteFile(path, bytes);
  const auto loaded = LoadGraphBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange)
      << loaded.status();
}

TEST_F(GraphIoTest, BinaryNonMonotoneIndptrRejected) {
  const AttributedGraph g = SampleGraph();
  const std::string path = Path("indptr.bin");
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  std::string bytes = ReadFile(path);
  const size_t second_indptr_offset = 8 + 1 + 8 + 8 + 8 + 8;
  const int64_t bad = -5;
  std::memcpy(&bytes[second_indptr_offset], &bad, sizeof(bad));
  WriteFile(path, bytes);
  EXPECT_FALSE(LoadGraphBinary(path).ok());
}

TEST_F(GraphIoTest, BinaryOversizedLabelCountRejected) {
  SbmParams params;
  params.num_nodes = 20;
  params.num_edges = 40;
  params.num_attributes = 5;
  params.num_attr_entries = 20;
  params.num_communities = 2;
  const AttributedGraph g = GenerateAttributedSbm(params);
  const std::string path = Path("labels.bin");
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  std::string bytes = ReadFile(path);
  // The label block trails the file: n(8) then per-node u32 counts. Corrupt
  // the first count, located right after the stored node count, by scanning
  // from the end: the block is 8 + sum(4 + 4 * count). Easier: rewrite the
  // first count field directly — it sits 8 bytes after the label-block
  // start, which we find by reconstructing the front sections' sizes.
  const auto csr_bytes = [](const CsrMatrix& m) {
    return 8 + 8 + 8 + m.indptr().size() * 8 + 8 + m.indices().size() * 4 +
           8 + m.values().size() * 8;
  };
  const size_t first_count_offset = 8 + 1 + csr_bytes(g.adjacency()) +
                                    csr_bytes(g.attributes()) + 8;
  const uint32_t huge = 0xffffffffu;
  std::memcpy(&bytes[first_count_offset], &huge, sizeof(huge));
  WriteFile(path, bytes);
  const auto loaded = LoadGraphBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status();
}

TEST_F(GraphIoTest, BinarySelfLoopAndWeightedAdjacencyRejected) {
  AttributedGraph g =
      GraphBuilder(2, 1).AddEdge(0, 1).Build().ValueOrDie();
  const std::string path = Path("selfloop.bin");
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  const std::string original = ReadFile(path);
  // Layout: magic(8) flag(1) rows(8) cols(8) indptr_len(8) indptr[3*8]
  //         indices_len(8) indices[0]...
  const size_t first_index_offset = 8 + 1 + 8 + 8 + 8 + 3 * 8 + 8;
  {
    std::string bytes = original;
    const int32_t self = 0;  // edge (0, 0)
    std::memcpy(&bytes[first_index_offset], &self, sizeof(self));
    WriteFile(path, bytes);
    const auto loaded = LoadGraphBinary(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("self-loop"), std::string::npos)
        << loaded.status();
  }
  {
    std::string bytes = original;
    const size_t first_value_offset = first_index_offset + 4 + 8;
    const double heavy = 2.0;
    std::memcpy(&bytes[first_value_offset], &heavy, sizeof(heavy));
    WriteFile(path, bytes);
    EXPECT_FALSE(LoadGraphBinary(path).ok());
  }
}

TEST_F(GraphIoTest, BinaryNanAttributeWeightRejected) {
  AttributedGraph g = GraphBuilder(2, 1)
                          .AddEdge(0, 1)
                          .AddNodeAttribute(0, 0, 0.5)
                          .Build()
                          .ValueOrDie();
  const std::string path = Path("nan_attr.bin");
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  std::string bytes = ReadFile(path);
  // The attribute values block is the last 8 bytes before the label block
  // (n i64 + two empty-label u32 counts): patch it to NaN.
  const size_t attr_value_offset = bytes.size() - (8 + 2 * 4) - 8;
  const double nan_value = std::nan("");
  std::memcpy(&bytes[attr_value_offset], &nan_value, sizeof(nan_value));
  WriteFile(path, bytes);
  const auto loaded = LoadGraphBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("attribute"), std::string::npos)
      << loaded.status();
}

// --- edge lists ------------------------------------------------------------

TEST_F(GraphIoTest, EdgeListRoundTrip) {
  const AttributedGraph g = SampleGraph();
  const std::string path = Path("graph.el");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  EdgeListOptions options;
  options.num_nodes = g.num_nodes();
  auto loaded = LoadEdgeList(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  EXPECT_EQ(loaded->adjacency().ToDense().MaxAbsDiff(
                g.adjacency().ToDense()),
            0.0);
  EXPECT_EQ(loaded->num_attributes(), 0);
}

TEST_F(GraphIoTest, EdgeListInfersNodeCountSkipsCommentsAndWeights) {
  const std::string path = Path("snap.el");
  WriteFile(path,
            "# SNAP-style header\n% konect too\n0 1\n1 2 0.5\n\n3 4\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_nodes(), 5);
  EXPECT_EQ(loaded->num_edges(), 3);
}

TEST_F(GraphIoTest, EdgeListUndirectedMirrorsEdges) {
  const std::string path = Path("undirected.el");
  WriteFile(path, "0 1\n1 2\n");
  EdgeListOptions options;
  options.undirected = true;
  auto loaded = LoadEdgeList(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->undirected());
  EXPECT_EQ(loaded->num_edges(), 4);
  EXPECT_EQ(loaded->adjacency().At(1, 0), 1.0);
  EXPECT_EQ(loaded->adjacency().At(2, 1), 1.0);
}

TEST_F(GraphIoTest, EdgeListMalformedLineReportsNumber) {
  const std::string path = Path("bad.el");
  WriteFile(path, "# header\n0 1\nnope nope\n");
  const auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos)
      << loaded.status();
}

TEST_F(GraphIoTest, EdgeListNegativeIdRejected) {
  const std::string path = Path("negative.el");
  WriteFile(path, "0 1\n-2 1\n");
  EXPECT_FALSE(LoadEdgeList(path).ok());
}

TEST_F(GraphIoTest, EdgeListHugeIdIsErrorNotAllocation) {
  // A single corrupt id must not size the builder: 1e18 nodes of label
  // vectors is an instant OOM if it reaches the allocation.
  const std::string path = Path("huge.el");
  WriteFile(path, "0 1\n999999999999999999 0\n");
  const auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("2^31"), std::string::npos);
}

TEST_F(GraphIoTest, EdgeListHeaderPreservesNodeCountAndUndirectedFlag) {
  // An undirected graph with a trailing isolated node survives the
  // SaveEdgeList -> LoadEdgeList round trip via the header fields.
  GraphBuilder builder(4, 1);
  builder.AddUndirectedEdge(0, 1).AddUndirectedEdge(1, 2);  // node 3 isolated
  const AttributedGraph g = builder.Build(/*undirected=*/true).ValueOrDie();
  const std::string path = Path("header.el");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_nodes(), 4);
  EXPECT_TRUE(loaded->undirected());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
}

TEST_F(GraphIoTest, TextRejectsLabelAboveInt32Range) {
  const std::string dir = Path("wrap_labels");
  WriteTextGraph(dir, "0 1\n", "");
  WriteFile(dir + "/labels.txt", "0 4294967296\n");  // would wrap to 0
  const auto loaded = LoadGraphText(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
}

// --- format equivalence and dispatch ---------------------------------------

TEST_F(GraphIoTest, TextBinaryEdgeListLoadsAgree) {
  const AttributedGraph g = SampleGraph();
  const std::string text_dir = Path("eq_text");
  const std::string bin_path = Path("eq.bin");
  const std::string el_path = Path("eq.el");
  ASSERT_TRUE(SaveGraphText(g, text_dir).ok());
  ASSERT_TRUE(SaveGraphBinary(g, bin_path).ok());
  ASSERT_TRUE(SaveEdgeList(g, el_path).ok());

  ThreadPool pool(3);
  auto from_text = LoadGraphText(text_dir, &pool);
  auto from_binary = LoadGraphBinary(bin_path);
  ASSERT_TRUE(from_text.ok()) << from_text.status();
  ASSERT_TRUE(from_binary.ok()) << from_binary.status();
  ExpectGraphsEqual(*from_text, *from_binary);

  EdgeListOptions options;
  options.num_nodes = g.num_nodes();
  options.pool = &pool;
  auto from_edge_list = LoadEdgeList(el_path, options);
  ASSERT_TRUE(from_edge_list.ok()) << from_edge_list.status();
  EXPECT_EQ(from_edge_list->adjacency().ToDense().MaxAbsDiff(
                from_binary->adjacency().ToDense()),
            0.0);
}

TEST_F(GraphIoTest, LoadGraphAutoDispatchesOnPathKind) {
  const AttributedGraph g = SampleGraph();
  const std::string text_dir = Path("auto_text");
  const std::string bin_path = Path("auto.bin");
  const std::string el_path = Path("auto.el");
  ASSERT_TRUE(SaveGraphText(g, text_dir).ok());
  ASSERT_TRUE(SaveGraphBinary(g, bin_path).ok());
  ASSERT_TRUE(SaveEdgeList(g, el_path).ok());

  auto from_dir = LoadGraphAuto(text_dir);
  ASSERT_TRUE(from_dir.ok()) << from_dir.status();
  ExpectGraphsEqual(g, *from_dir);
  auto from_bin = LoadGraphAuto(bin_path);
  ASSERT_TRUE(from_bin.ok()) << from_bin.status();
  ExpectGraphsEqual(g, *from_bin);
  auto from_el = LoadGraphAuto(el_path);
  ASSERT_TRUE(from_el.ok()) << from_el.status();
  EXPECT_EQ(from_el->num_edges(), g.num_edges());

  EXPECT_TRUE(LoadGraphAuto(Path("missing")).status().IsIOError());
}

TEST_F(GraphIoTest, UndirectedFlagSurvivesRoundTrip) {
  SbmParams params;
  params.num_nodes = 60;
  params.num_edges = 200;
  params.num_attributes = 10;
  params.num_attr_entries = 100;
  params.num_communities = 3;
  params.undirected = true;
  const AttributedGraph g = GenerateAttributedSbm(params);
  const std::string path = (dir_ / "undirected.bin").string();
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  EXPECT_TRUE(LoadGraphBinary(path)->undirected());
}

TEST_F(GraphIoTest, ContainerRoundTrip) {
  const AttributedGraph g = SampleGraph();
  const std::string path = (dir_ / "graph.pane").string();
  ASSERT_TRUE(SaveGraphContainer(g, path).ok());
  auto loaded = LoadGraphContainer(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectGraphsEqual(g, *loaded);
}

TEST_F(GraphIoTest, ContainerUndirectedFlagSurvives) {
  SbmParams params;
  params.num_nodes = 60;
  params.num_edges = 200;
  params.num_attributes = 10;
  params.num_attr_entries = 100;
  params.num_communities = 3;
  params.undirected = true;
  const AttributedGraph g = GenerateAttributedSbm(params);
  const std::string path = (dir_ / "undirected.pane").string();
  ASSERT_TRUE(SaveGraphContainer(g, path).ok());
  auto loaded = LoadGraphContainer(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->undirected());
  ExpectGraphsEqual(g, *loaded);
}

TEST_F(GraphIoTest, LoadGraphAutoDispatchesOnContainerMagic) {
  const AttributedGraph g = SampleGraph();
  const std::string path = (dir_ / "auto.pane").string();
  ASSERT_TRUE(SaveGraphContainer(g, path).ok());
  auto loaded = LoadGraphAuto(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectGraphsEqual(g, *loaded);
}

TEST_F(GraphIoTest, ContainerFlippedByteFailsWithChecksumError) {
  const AttributedGraph g = SampleGraph();
  const std::string path = (dir_ / "corrupt.pane").string();
  ASSERT_TRUE(SaveGraphContainer(g, path).ok());
  std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 8192u);
  // Flip one byte well inside the data pages, past the superblock.
  bytes[bytes.size() / 2 + 3] ^= 0x10;
  WriteFile(path, bytes);
  const auto loaded = LoadGraphContainer(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status();
}

TEST_F(GraphIoTest, ContainerWithoutGraphStreamsIsRejected) {
  // A perfectly valid container holding an embedding, not a graph.
  NodeEmbedding embedding;
  embedding.method = "pane";
  embedding.features = DenseMatrix(4, 3);
  for (int64_t i = 0; i < embedding.features.size(); ++i) {
    embedding.features.data()[i] = 0.5 * static_cast<double>(i);
  }
  const std::string path = (dir_ / "embedding.pane").string();
  ASSERT_TRUE(embedding.SaveContainer(path).ok());
  const auto loaded = LoadGraphContainer(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
}

}  // namespace
}  // namespace pane
