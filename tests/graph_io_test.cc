// Round-trip tests for the graph text / binary persistence layer.
#include "src/graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/graph/generators.h"

namespace pane {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pane_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

AttributedGraph SampleGraph() {
  SbmParams params;
  params.num_nodes = 120;
  params.num_edges = 500;
  params.num_attributes = 30;
  params.num_attr_entries = 400;
  params.num_communities = 4;
  params.seed = 9;
  return GenerateAttributedSbm(params);
}

void ExpectGraphsEqual(const AttributedGraph& a, const AttributedGraph& b) {
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_attributes(), b.num_attributes());
  EXPECT_EQ(a.num_attribute_entries(), b.num_attribute_entries());
  EXPECT_EQ(a.undirected(), b.undirected());
  EXPECT_EQ(a.adjacency().ToDense().MaxAbsDiff(b.adjacency().ToDense()), 0.0);
  EXPECT_LT(a.attributes().ToDense().MaxAbsDiff(b.attributes().ToDense()),
            1e-14);
  ASSERT_EQ(a.labels().size(), b.labels().size());
  for (size_t v = 0; v < a.labels().size(); ++v) {
    EXPECT_EQ(a.labels()[v], b.labels()[v]) << "node " << v;
  }
}

TEST_F(GraphIoTest, TextRoundTrip) {
  const AttributedGraph g = SampleGraph();
  const std::string dir = (dir_ / "text").string();
  ASSERT_TRUE(SaveGraphText(g, dir).ok());
  auto loaded = LoadGraphText(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectGraphsEqual(g, *loaded);
}

TEST_F(GraphIoTest, BinaryRoundTrip) {
  const AttributedGraph g = SampleGraph();
  const std::string path = (dir_ / "graph.bin").string();
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  auto loaded = LoadGraphBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectGraphsEqual(g, *loaded);
}

TEST_F(GraphIoTest, LoadTextMissingDirectoryFails) {
  EXPECT_TRUE(LoadGraphText((dir_ / "nope").string()).status().IsIOError());
}

TEST_F(GraphIoTest, LoadBinaryMissingFileFails) {
  EXPECT_TRUE(
      LoadGraphBinary((dir_ / "nope.bin").string()).status().IsIOError());
}

TEST_F(GraphIoTest, LoadBinaryRejectsGarbage) {
  const std::string path = (dir_ / "junk.bin").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a graph", f);
    std::fclose(f);
  }
  const auto loaded = LoadGraphBinary(path);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(GraphIoTest, UndirectedFlagSurvivesRoundTrip) {
  SbmParams params;
  params.num_nodes = 60;
  params.num_edges = 200;
  params.num_attributes = 10;
  params.num_attr_entries = 100;
  params.num_communities = 3;
  params.undirected = true;
  const AttributedGraph g = GenerateAttributedSbm(params);
  const std::string path = (dir_ / "undirected.bin").string();
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  EXPECT_TRUE(LoadGraphBinary(path)->undirected());
}

}  // namespace
}  // namespace pane
