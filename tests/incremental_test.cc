// Tests for the warm-start refresh (time-varying graph extension): shape
// validation, quality after small update batches, and the warm-vs-cold
// advantage that justifies the module.
#include "src/core/incremental.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/tasks/link_prediction.h"
#include "test_util.h"

namespace pane {
namespace {

// Rebuilds `g` with `extra_edges` new random edges appended (and optionally
// `extra_nodes` fresh nodes wired into the graph).
AttributedGraph Perturb(const AttributedGraph& g, int64_t extra_edges,
                        int64_t extra_nodes, uint64_t seed) {
  Rng rng(seed);
  const int64_t n = g.num_nodes() + extra_nodes;
  GraphBuilder builder(n, g.num_attributes());
  for (int64_t u = 0; u < g.num_nodes(); ++u) {
    const CsrMatrix::RowView row = g.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) builder.AddEdge(u, row.cols[p]);
  }
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    const CsrMatrix::RowView row = g.attributes().Row(v);
    for (int64_t p = 0; p < row.length; ++p) {
      builder.AddNodeAttribute(v, row.cols[p], row.vals[p]);
    }
  }
  for (int64_t e = 0; e < extra_edges; ++e) {
    builder.AddEdge(
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n))),
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n))));
  }
  for (int64_t v = g.num_nodes(); v < n; ++v) {
    builder.AddEdge(v, static_cast<int64_t>(
                           rng.UniformInt(static_cast<uint64_t>(g.num_nodes()))));
    builder.AddNodeAttribute(
        v,
        static_cast<int64_t>(
            rng.UniformInt(static_cast<uint64_t>(g.num_attributes()))),
        1.0);
  }
  return builder.Build(false).ValueOrDie();
}

TEST(RefreshTest, ValidatesInputs) {
  const AttributedGraph g = testing::SmallSbm(141, 200);
  PaneOptions options;
  options.k = 16;
  const auto base = Pane(options).Train(g).ValueOrDie();

  // Attribute count change rejected.
  GraphBuilder builder(10, g.num_attributes() + 1);
  builder.AddEdge(0, 1);
  builder.AddNodeAttribute(0, 0, 1.0);
  const AttributedGraph wrong_d = builder.Build(false).ValueOrDie();
  EXPECT_FALSE(RefreshEmbedding(wrong_d, base, RefreshOptions{}).ok());

  // Node shrinkage rejected.
  GraphBuilder small(10, g.num_attributes());
  small.AddEdge(0, 1);
  small.AddNodeAttribute(0, 0, 1.0);
  EXPECT_FALSE(
      RefreshEmbedding(small.Build(false).ValueOrDie(), base, RefreshOptions{})
          .ok());
}

TEST(RefreshTest, SmallUpdateKeepsQuality) {
  const AttributedGraph g = testing::SmallSbm(142, 400);
  PaneOptions options;
  options.k = 32;
  const auto base = Pane(options).Train(g).ValueOrDie();

  const AttributedGraph updated = Perturb(g, /*extra_edges=*/60,
                                          /*extra_nodes=*/0, 1);
  RefreshStats stats;
  const auto refreshed =
      RefreshEmbedding(updated, base, RefreshOptions{}, &stats).ValueOrDie();

  // Full retrain objective as the reference.
  PaneStats full_stats;
  (void)Pane(options).Train(updated, &full_stats).ValueOrDie();
  // Two CCD sweeps from the warm seed reach within 10% of full retrain.
  EXPECT_LT(stats.objective_final, 1.1 * full_stats.objective_final);
  EXPECT_EQ(refreshed.xf.rows(), updated.num_nodes());
}

TEST(RefreshTest, WarmStartBeatsColdAtEqualBudget) {
  const AttributedGraph g = testing::SmallSbm(143, 400);
  PaneOptions options;
  options.k = 32;
  const auto base = Pane(options).Train(g).ValueOrDie();
  const AttributedGraph updated = Perturb(g, 80, 0, 2);

  RefreshStats warm_stats;
  (void)RefreshEmbedding(updated, base, RefreshOptions{}, &warm_stats)
      .ValueOrDie();

  // Cold start with the same 2-iteration budget but random init.
  PaneOptions cold = options;
  cold.greedy_init = false;
  cold.ccd_iterations = 2;
  PaneStats cold_stats;
  (void)Pane(cold).Train(updated, &cold_stats).ValueOrDie();

  EXPECT_LT(warm_stats.objective_final, cold_stats.objective_final);
}

TEST(RefreshTest, HandlesNewNodes) {
  const AttributedGraph g = testing::SmallSbm(144, 300);
  PaneOptions options;
  options.k = 16;
  const auto base = Pane(options).Train(g).ValueOrDie();
  const AttributedGraph updated = Perturb(g, 20, /*extra_nodes=*/30, 3);
  const auto refreshed =
      RefreshEmbedding(updated, base, RefreshOptions{}).ValueOrDie();
  EXPECT_EQ(refreshed.xf.rows(), 330);
  // New-node rows are live (finite, not all zero).
  double tail_norm = 0.0;
  for (int64_t v = 300; v < 330; ++v) {
    for (int64_t j = 0; j < refreshed.xf.cols(); ++j) {
      ASSERT_TRUE(std::isfinite(refreshed.xf(v, j)));
      tail_norm += std::abs(refreshed.xf(v, j));
    }
  }
  EXPECT_GT(tail_norm, 0.0);
}

TEST(RefreshTest, ParallelRefreshMatchesSerialQuality) {
  const AttributedGraph g = testing::SmallSbm(145, 300);
  PaneOptions options;
  options.k = 16;
  const auto base = Pane(options).Train(g).ValueOrDie();
  const AttributedGraph updated = Perturb(g, 50, 0, 4);

  RefreshOptions serial;
  RefreshStats serial_stats;
  (void)RefreshEmbedding(updated, base, serial, &serial_stats).ValueOrDie();

  RefreshOptions parallel;
  parallel.num_threads = 4;
  RefreshStats parallel_stats;
  (void)RefreshEmbedding(updated, base, parallel, &parallel_stats)
      .ValueOrDie();

  EXPECT_NEAR(parallel_stats.objective_final, serial_stats.objective_final,
              0.05 * serial_stats.objective_final);
}

}  // namespace
}  // namespace pane
