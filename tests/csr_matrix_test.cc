// Tests for the CSR sparse matrix: assembly, transforms, normalizations.
#include "src/matrix/csr_matrix.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace pane {
namespace {

CsrMatrix Example() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  return CsrMatrix::FromTriplets(
             3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 0, 3.0}, {2, 1, 4.0}})
      .ValueOrDie();
}

TEST(CsrMatrixTest, FromTripletsBasic) {
  const CsrMatrix m = Example();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 4.0);
}

TEST(CsrMatrixTest, DuplicatesSum) {
  const CsrMatrix m =
      CsrMatrix::FromTriplets(2, 2, {{0, 1, 1.0}, {0, 1, 2.5}, {1, 0, 1.0}})
          .ValueOrDie();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 3.5);
}

TEST(CsrMatrixTest, RowsSortedByColumn) {
  const CsrMatrix m =
      CsrMatrix::FromTriplets(1, 5, {{0, 4, 1}, {0, 0, 2}, {0, 2, 3}})
          .ValueOrDie();
  const CsrMatrix::RowView row = m.Row(0);
  ASSERT_EQ(row.length, 3);
  EXPECT_EQ(row.cols[0], 0);
  EXPECT_EQ(row.cols[1], 2);
  EXPECT_EQ(row.cols[2], 4);
}

TEST(CsrMatrixTest, OutOfRangeTripletRejected) {
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}).ok());
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{0, -1, 1.0}}).ok());
}

TEST(CsrMatrixTest, FromCsrArraysValidation) {
  EXPECT_TRUE(CsrMatrix::FromCsrArrays(2, 2, {0, 1, 2}, {1, 0}, {1.0, 2.0}).ok());
  // indptr wrong size
  EXPECT_FALSE(CsrMatrix::FromCsrArrays(2, 2, {0, 2}, {1, 0}, {1.0, 2.0}).ok());
  // decreasing indptr
  EXPECT_FALSE(CsrMatrix::FromCsrArrays(2, 2, {0, 2, 1}, {1, 0}, {1.0, 2.0}).ok());
  // column out of range
  EXPECT_FALSE(CsrMatrix::FromCsrArrays(2, 2, {0, 1, 2}, {1, 5}, {1.0, 2.0}).ok());
  // unsorted columns within a row (At / ColSlice binary search rows)
  EXPECT_FALSE(
      CsrMatrix::FromCsrArrays(2, 3, {0, 2, 2}, {2, 0}, {1.0, 2.0}).ok());
  // duplicate column within a row
  EXPECT_FALSE(
      CsrMatrix::FromCsrArrays(2, 3, {0, 2, 2}, {1, 1}, {1.0, 2.0}).ok());
  // sorted rows pass
  EXPECT_TRUE(
      CsrMatrix::FromCsrArrays(2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0})
          .ok());
}

TEST(CsrMatrixTest, RowColSums) {
  const CsrMatrix m = Example();
  const auto row_sums = m.RowSums();
  EXPECT_DOUBLE_EQ(row_sums[0], 3.0);
  EXPECT_DOUBLE_EQ(row_sums[1], 0.0);
  EXPECT_DOUBLE_EQ(row_sums[2], 7.0);
  const auto col_sums = m.ColSums();
  EXPECT_DOUBLE_EQ(col_sums[0], 4.0);
  EXPECT_DOUBLE_EQ(col_sums[1], 4.0);
  EXPECT_DOUBLE_EQ(col_sums[2], 2.0);
}

TEST(CsrMatrixTest, TransposeMatchesDense) {
  const CsrMatrix m = Example();
  const CsrMatrix t = m.Transposed();
  const DenseMatrix md = m.ToDense();
  const DenseMatrix td = t.ToDense();
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(md(i, j), td(j, i));
  }
}

TEST(CsrMatrixTest, TransposeTwiceIsIdentity) {
  Rng rng(71);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 500; ++i) {
    triplets.push_back(Triplet{static_cast<int64_t>(rng.UniformInt(uint64_t{40})),
                               static_cast<int64_t>(rng.UniformInt(uint64_t{30})),
                               rng.UniformDouble()});
  }
  const CsrMatrix m = CsrMatrix::FromTriplets(40, 30, triplets).ValueOrDie();
  const CsrMatrix tt = m.Transposed().Transposed();
  EXPECT_EQ(m.ToDense().MaxAbsDiff(tt.ToDense()), 0.0);
}

TEST(CsrMatrixTest, RowNormalizedIsStochastic) {
  const CsrMatrix rn = Example().RowNormalized();
  const auto sums = rn.RowSums();
  EXPECT_NEAR(sums[0], 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(sums[1], 0.0);  // zero row stays zero
  EXPECT_NEAR(sums[2], 1.0, 1e-15);
  EXPECT_NEAR(rn.At(2, 0), 3.0 / 7.0, 1e-15);
}

TEST(CsrMatrixTest, ColNormalizedSumsToOne) {
  const CsrMatrix cn = Example().ColNormalized();
  const auto sums = cn.ColSums();
  EXPECT_NEAR(sums[0], 1.0, 1e-15);
  EXPECT_NEAR(sums[1], 1.0, 1e-15);
  EXPECT_NEAR(sums[2], 1.0, 1e-15);
  EXPECT_NEAR(cn.At(0, 0), 0.25, 1e-15);
}

TEST(CsrMatrixTest, ColSliceReindexes) {
  const CsrMatrix m = Example();
  const CsrMatrix slice = m.ColSlice(1, 3);
  EXPECT_EQ(slice.cols(), 2);
  EXPECT_DOUBLE_EQ(slice.At(0, 1), 2.0);  // was column 2
  EXPECT_DOUBLE_EQ(slice.At(2, 0), 4.0);  // was column 1
  EXPECT_EQ(slice.nnz(), 2);
}

TEST(CsrMatrixTest, ColSliceConcatenationCoversMatrix) {
  const CsrMatrix m = Example();
  const CsrMatrix a = m.ColSlice(0, 2);
  const CsrMatrix b = m.ColSlice(2, 3);
  EXPECT_EQ(a.nnz() + b.nnz(), m.nnz());
}

TEST(CsrMatrixTest, ScaleValues) {
  CsrMatrix m = Example();
  m.ScaleValues(2.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 8.0);
}

TEST(CsrMatrixTest, EmptyMatrix) {
  const CsrMatrix m = CsrMatrix::FromTriplets(0, 0, {}).ValueOrDie();
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

}  // namespace
}  // namespace pane
