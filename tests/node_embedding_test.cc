// Tests for the unified NodeEmbedding artifact: shape / convention checks
// and the single binary format, including byte-for-byte save/load round
// trips with and without the optional factor blocks.
#include "src/api/node_embedding.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/common/random.h"
#include "src/store/container.h"

namespace pane {
namespace {

NodeEmbedding FeatureOnlyEmbedding(int64_t n, int64_t dim, uint64_t seed) {
  Rng rng(seed);
  NodeEmbedding e;
  e.method = "tadw";
  e.features.Resize(n, dim);
  e.features.FillGaussian(&rng);
  e.link_convention = LinkConvention::kInnerProduct;
  e.attribute_convention = AttributeConvention::kCentroid;
  return e;
}

NodeEmbedding FactorEmbedding(int64_t n, int64_t d, int64_t h, uint64_t seed) {
  Rng rng(seed);
  NodeEmbedding e;
  e.method = "pane";
  e.xf.Resize(n, h);
  e.xb.Resize(n, h);
  e.y.Resize(d, h);
  e.xf.FillGaussian(&rng);
  e.xb.FillGaussian(&rng);
  e.y.FillGaussian(&rng);
  e.features.Resize(n, 2 * h);
  e.features.SetBlock(0, 0, e.xf);
  e.features.SetBlock(0, h, e.xb);
  e.link_convention = LinkConvention::kForwardBackward;
  e.attribute_convention = AttributeConvention::kFactors;
  return e;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class NodeEmbeddingIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto dir = std::filesystem::temp_directory_path();
    path_ = (dir / ("node_emb_" + std::to_string(::getpid()) + ".bin"))
                .string();
    path2_ = path_ + ".resaved";
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path2_);
  }
  std::string path_;
  std::string path2_;
};

TEST(NodeEmbeddingTest, CheckAcceptsWellFormedArtifacts) {
  EXPECT_TRUE(FeatureOnlyEmbedding(10, 8, 1).Check().ok());
  EXPECT_TRUE(FactorEmbedding(10, 6, 4, 2).Check().ok());
}

TEST(NodeEmbeddingTest, CheckRejectsMissingFeatures) {
  NodeEmbedding e;
  e.method = "broken";
  EXPECT_TRUE(e.Check().IsInvalidArgument());
}

TEST(NodeEmbeddingTest, CheckRejectsMismatchedFactorBlocks) {
  NodeEmbedding e = FactorEmbedding(10, 6, 4, 3);
  e.xb.Resize(10, 3);  // xf is 10 x 4
  EXPECT_TRUE(e.Check().IsInvalidArgument());
}

TEST(NodeEmbeddingTest, CheckRejectsConventionWithoutFactors) {
  NodeEmbedding e = FeatureOnlyEmbedding(10, 8, 4);
  e.link_convention = LinkConvention::kForwardBackward;
  EXPECT_TRUE(e.Check().IsInvalidArgument());

  NodeEmbedding e2 = FeatureOnlyEmbedding(10, 8, 5);
  e2.attribute_convention = AttributeConvention::kFactors;
  EXPECT_TRUE(e2.Check().IsInvalidArgument());
}

TEST_F(NodeEmbeddingIoTest, FeatureOnlyRoundTripIsByteForByte) {
  const NodeEmbedding e = FeatureOnlyEmbedding(20, 12, 6);
  ASSERT_TRUE(e.Save(path_).ok());
  const auto loaded = NodeEmbedding::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->method, "tadw");
  EXPECT_EQ(loaded->link_convention, LinkConvention::kInnerProduct);
  EXPECT_EQ(loaded->attribute_convention, AttributeConvention::kCentroid);
  EXPECT_TRUE(loaded->xf.empty());
  EXPECT_TRUE(loaded->y.empty());
  EXPECT_EQ(e.features.MaxAbsDiff(loaded->features), 0.0);

  ASSERT_TRUE(loaded->Save(path2_).ok());
  EXPECT_EQ(ReadFileBytes(path_), ReadFileBytes(path2_));
}

TEST_F(NodeEmbeddingIoTest, FactorRoundTripIsByteForByte) {
  const NodeEmbedding e = FactorEmbedding(15, 9, 4, 7);
  ASSERT_TRUE(e.Save(path_).ok());
  const auto loaded = NodeEmbedding::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->method, "pane");
  EXPECT_EQ(loaded->link_convention, LinkConvention::kForwardBackward);
  EXPECT_EQ(loaded->attribute_convention, AttributeConvention::kFactors);
  EXPECT_EQ(e.features.MaxAbsDiff(loaded->features), 0.0);
  EXPECT_EQ(e.xf.MaxAbsDiff(loaded->xf), 0.0);
  EXPECT_EQ(e.xb.MaxAbsDiff(loaded->xb), 0.0);
  EXPECT_EQ(e.y.MaxAbsDiff(loaded->y), 0.0);

  ASSERT_TRUE(loaded->Save(path2_).ok());
  EXPECT_EQ(ReadFileBytes(path_), ReadFileBytes(path2_));
}

TEST_F(NodeEmbeddingIoTest, SaveRejectsInconsistentArtifacts) {
  NodeEmbedding e = FactorEmbedding(10, 6, 4, 8);
  e.y.Resize(6, 3);  // column count no longer matches xf
  EXPECT_TRUE(e.Save(path_).IsInvalidArgument());
}

TEST_F(NodeEmbeddingIoTest, LoadRejectsGarbageAndMissingFiles) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "definitely not an embedding";
  }
  EXPECT_TRUE(NodeEmbedding::Load(path_).status().IsInvalidArgument());
  EXPECT_TRUE(
      NodeEmbedding::Load("/nonexistent/file.bin").status().IsIOError());
}

// First matrix record's file offset in a version-2 artifact: the padded
// header (see src/api/embedding_format.h).
size_t FirstMatrixOffset(const NodeEmbedding& e) {
  const int64_t header = embedding_format::HeaderBytes(e.method.size());
  return static_cast<size_t>(header + embedding_format::PaddingFor(header));
}

TEST_F(NodeEmbeddingIoTest, LoadRejectsImplausibleMatrixShapes) {
  // Corrupt the features row count to claim ~2^31 rows: Load must return a
  // Status instead of attempting a multi-gigabyte allocation.
  const NodeEmbedding e = FeatureOnlyEmbedding(10, 4, 10);
  ASSERT_TRUE(e.Save(path_).ok());
  std::string bytes = ReadFileBytes(path_);
  const size_t rows_offset = FirstMatrixOffset(e);
  const int64_t huge_rows = int64_t{1} << 31;
  bytes.replace(rows_offset, sizeof(huge_rows),
                reinterpret_cast<const char*>(&huge_rows),
                sizeof(huge_rows));
  {
    std::ofstream out(path2_, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto loaded = NodeEmbedding::Load(path2_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST(NodeEmbeddingTest, CheckRejectsOverlongMethodNames) {
  NodeEmbedding e = FeatureOnlyEmbedding(5, 3, 11);
  e.method = std::string(300, 'x');
  EXPECT_TRUE(e.Check().IsInvalidArgument());
}

TEST_F(NodeEmbeddingIoTest, LoadRejectsTruncatedFiles) {
  const NodeEmbedding e = FactorEmbedding(12, 5, 4, 9);
  ASSERT_TRUE(e.Save(path_).ok());
  const std::string bytes = ReadFileBytes(path_);
  {
    std::ofstream out(path2_, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(NodeEmbedding::Load(path2_).ok());
}

TEST_F(NodeEmbeddingIoTest, TruncationSweepNeverSucceeds) {
  // Every strict prefix — mid-header, mid-padding, mid-shape, mid-payload —
  // must yield a Status, never a crash, OOM attempt, or silent success.
  const NodeEmbedding e = FactorEmbedding(7, 4, 3, 13);
  ASSERT_TRUE(e.Save(path_).ok());
  const std::string bytes = ReadFileBytes(path_);
  for (size_t len = 0; len < bytes.size(); len += 3) {
    std::ofstream out(path2_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_FALSE(NodeEmbedding::Load(path2_).ok()) << "prefix " << len;
  }
}

TEST_F(NodeEmbeddingIoTest, SaveAlignsMatrixPayloadsToEightBytes) {
  // Version-2 guarantee behind the zero-copy mmap store: every matrix
  // payload (16 bytes past its record start) sits at an 8-byte offset.
  for (const std::string method : {"pane", "pane-seq", "x"}) {
    NodeEmbedding e = FactorEmbedding(6, 4, 3, 17);
    e.method = method;
    ASSERT_TRUE(e.Save(path_).ok());
    const size_t record = FirstMatrixOffset(e);
    EXPECT_EQ((record + 16) % 8, 0u) << method;
    // The record starts right after magic/version/method/conventions/mask
    // plus padding; re-load to prove the padding round-trips.
    const auto loaded = NodeEmbedding::Load(path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->method, method);
    EXPECT_EQ(e.xf.MaxAbsDiff(loaded->xf), 0.0);
  }
}

TEST_F(NodeEmbeddingIoTest, LoadRejectsUnknownMaskBits) {
  // A future-format or corrupt presence mask must fail loudly instead of
  // silently misplacing payloads.
  const NodeEmbedding e = FeatureOnlyEmbedding(4, 3, 23);
  ASSERT_TRUE(e.Save(path_).ok());
  std::string bytes = ReadFileBytes(path_);
  const size_t mask_offset = 8 + 4 + 4 + e.method.size() + 1 + 1;
  bytes[mask_offset] = static_cast<char>(0x88);
  {
    std::ofstream out(path2_, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_TRUE(NodeEmbedding::Load(path2_).status().IsInvalidArgument());
}

TEST_F(NodeEmbeddingIoTest, LoadsHandWrittenVersion1Artifacts) {
  // Backward compatibility: version 1 files (no header padding) written by
  // the pre-serving format must still load.
  const NodeEmbedding e = FeatureOnlyEmbedding(3, 2, 21);
  std::string v1;
  const auto append = [&v1](const void* p, size_t n) {
    v1.append(reinterpret_cast<const char*>(p), n);
  };
  const uint64_t magic = 0x50414e454e454231ULL;
  const uint32_t version = 1;
  const uint32_t method_len = static_cast<uint32_t>(e.method.size());
  append(&magic, 8);
  append(&version, 4);
  append(&method_len, 4);
  v1 += e.method;
  const int8_t link = 0, attr = 0;
  const uint8_t mask = 0;
  append(&link, 1);
  append(&attr, 1);
  append(&mask, 1);
  const int64_t rows = e.features.rows(), cols = e.features.cols();
  append(&rows, 8);
  append(&cols, 8);
  append(e.features.data(),
         static_cast<size_t>(e.features.size()) * sizeof(double));
  {
    std::ofstream out(path_, std::ios::binary);
    out.write(v1.data(), static_cast<std::streamsize>(v1.size()));
  }
  const auto loaded = NodeEmbedding::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->method, e.method);
  EXPECT_EQ(e.features.MaxAbsDiff(loaded->features), 0.0);
  // Re-saving writes version 2; the artifact must round-trip unchanged in
  // content even though the bytes differ (new padding).
  ASSERT_TRUE(loaded->Save(path2_).ok());
  const auto resaved = NodeEmbedding::Load(path2_);
  ASSERT_TRUE(resaved.ok()) << resaved.status();
  EXPECT_EQ(e.features.MaxAbsDiff(resaved->features), 0.0);
}

TEST_F(NodeEmbeddingIoTest, ContainerRoundTripMatchesLegacyBitwise) {
  const NodeEmbedding e = FactorEmbedding(15, 9, 4, 31);
  ASSERT_TRUE(e.Save(path_).ok());
  ASSERT_TRUE(e.SaveContainer(path2_).ok());
  // Load dispatches on the magic: both layouts decode to the same artifact,
  // matrix payloads bitwise equal.
  const auto legacy = NodeEmbedding::Load(path_);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  const auto container = NodeEmbedding::Load(path2_);
  ASSERT_TRUE(container.ok()) << container.status();
  EXPECT_EQ(container->method, legacy->method);
  EXPECT_EQ(container->link_convention, legacy->link_convention);
  EXPECT_EQ(container->attribute_convention, legacy->attribute_convention);
  EXPECT_EQ(legacy->features.MaxAbsDiff(container->features), 0.0);
  EXPECT_EQ(legacy->xf.MaxAbsDiff(container->xf), 0.0);
  EXPECT_EQ(legacy->xb.MaxAbsDiff(container->xb), 0.0);
  EXPECT_EQ(legacy->y.MaxAbsDiff(container->y), 0.0);
  // And the container write itself is deterministic.
  const std::string again = path2_ + ".again";
  ASSERT_TRUE(e.SaveContainer(again).ok());
  EXPECT_EQ(ReadFileBytes(path2_), ReadFileBytes(again));
  std::filesystem::remove(again);
}

TEST_F(NodeEmbeddingIoTest, ContainerLoadDetectsFlippedBytes) {
  const NodeEmbedding e = FactorEmbedding(12, 7, 4, 33);
  ASSERT_TRUE(e.SaveContainer(path_).ok());
  std::string bytes = ReadFileBytes(path_);
  // Flip one byte in the middle of a matrix payload (the file's second
  // half is all data pages).
  bytes[bytes.size() / 2 + 17] ^= 0x20;
  {
    std::ofstream out(path2_, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto corrupt = NodeEmbedding::Load(path2_);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("checksum"), std::string::npos)
      << corrupt.status();
}

TEST_F(NodeEmbeddingIoTest, ContainerWithoutEmbeddingStreamsIsRejected) {
  // A valid container holding non-embedding streams must be refused with a
  // descriptive error, not misparsed.
  store::ContainerWriter writer;
  const double payload[4] = {1, 2, 3, 4};
  ASSERT_TRUE(writer
                  .AddStream("something.else", store::PageType::kMeta,
                             payload, sizeof(payload))
                  .ok());
  ASSERT_TRUE(writer.WriteTo(path_).ok());
  const auto loaded = NodeEmbedding::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
}

}  // namespace
}  // namespace pane
