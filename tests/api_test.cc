// Tests for the unified Embedder API: EmbedderConfig parsing and the
// FlagSet bridge, EmbedderRegistry error paths, and the full round trip —
// every registered method trains on the running-example / small-SBM
// datasets and its NodeEmbedding feeds all three downstream-task adapters.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/api/adapters.h"
#include "src/api/embedder.h"
#include "src/api/evaluate.h"
#include "src/api/registry.h"
#include "src/common/flags.h"
#include "test_util.h"

namespace pane {
namespace {

EmbedderConfig SmallConfig() {
  // Small k keeps every method fast; method-specific knobs stay at their
  // defaults except where the tiny graphs require otherwise.
  return EmbedderConfig().Set("k", "8").Set("threads", "2");
}

TEST(EmbedderConfigTest, TypedGettersWithDefaults) {
  const EmbedderConfig config =
      EmbedderConfig().Set("k", "64").Set("alpha", "0.25").Set("flag", "true");
  EXPECT_EQ(*config.GetInt("k", 128), 64);
  EXPECT_EQ(*config.GetInt("absent", 7), 7);
  EXPECT_DOUBLE_EQ(*config.GetDouble("alpha", 0.5), 0.25);
  EXPECT_TRUE(*config.GetBool("flag", false));
  EXPECT_EQ(config.GetString("absent", "fallback"), "fallback");
}

TEST(EmbedderConfigTest, MalformedValuesAreInvalidArgument) {
  const EmbedderConfig config =
      EmbedderConfig().Set("k", "eight").Set("alpha", "much").Set("b", "?");
  EXPECT_TRUE(config.GetInt("k", 1).status().IsInvalidArgument());
  EXPECT_TRUE(config.GetDouble("alpha", 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(config.GetBool("b", true).status().IsInvalidArgument());
}

TEST(EmbedderConfigTest, BridgesFromFlagSet) {
  FlagSet flags;
  flags.AddInt("k", 32, "budget");
  flags.AddDouble("alpha", 0.4, "stop prob");
  flags.AddString("method", "nrp", "method");
  flags.AddBool("greedy_init", false, "greedy");
  const EmbedderConfig config = EmbedderConfig::FromFlags(flags);
  EXPECT_EQ(*config.GetInt("k", 0), 32);
  EXPECT_DOUBLE_EQ(*config.GetDouble("alpha", 0.0), 0.4);
  EXPECT_EQ(config.GetString("method", ""), "nrp");
  EXPECT_FALSE(*config.GetBool("greedy_init", true));
}

TEST(EmbedderConfigTest, DashedKeysNormalizeToUnderscores) {
  // Every write path normalizes, so the --affinity-memory-mb flag bridge
  // and a raw --opt=affinity-memory-mb=64 entry both land on the one key
  // embedders read.
  FlagSet flags;
  flags.AddInt("affinity-memory-mb", 48, "budget");
  const EmbedderConfig bridged = EmbedderConfig::FromFlags(flags);
  EXPECT_EQ(*bridged.GetInt("affinity_memory_mb", 0), 48);
  const EmbedderConfig set =
      EmbedderConfig().Set("affinity-memory-mb", "64");
  EXPECT_EQ(*set.GetInt("affinity_memory_mb", 0), 64);
  EXPECT_TRUE(set.Has("affinity_memory_mb"));
}

TEST(EmbedderRegistryTest, NamesCoverAllSevenMethods) {
  const std::vector<std::string> names = EmbedderRegistry::Names();
  ASSERT_EQ(names.size(), 7u);
  for (const char* expected :
       {"bane", "bla", "lqanr", "nrp", "pane", "pane-seq", "tadw"}) {
    EXPECT_TRUE(EmbedderRegistry::Contains(expected)) << expected;
  }
  EXPECT_TRUE(EmbedderRegistry::Contains("PANE"));  // case-insensitive
  EXPECT_FALSE(EmbedderRegistry::Contains("gcn"));
}

TEST(EmbedderRegistryTest, UnknownNameIsNotFound) {
  const auto r = EmbedderRegistry::Create("deepwalk", EmbedderConfig());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  // The error lists the registered names for discoverability.
  EXPECT_NE(r.status().message().find("pane-seq"), std::string::npos);
}

TEST(EmbedderRegistryTest, MalformedConfigFailsAtCreate) {
  const auto r = EmbedderRegistry::Create(
      "pane", EmbedderConfig().Set("k", "not-a-number"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(EmbedderRegistryTest, InvalidOptionsFailValidationAtCreate) {
  // Odd k for PANE.
  EXPECT_TRUE(EmbedderRegistry::Create("pane", EmbedderConfig().Set("k", "7"))
                  .status()
                  .IsInvalidArgument());
  // alpha outside (0, 1).
  EXPECT_TRUE(EmbedderRegistry::Create(
                  "pane-seq", EmbedderConfig().Set("alpha", "1.5"))
                  .status()
                  .IsInvalidArgument());
  // LQANR bit width outside [1, 8].
  EXPECT_TRUE(EmbedderRegistry::Create(
                  "lqanr", EmbedderConfig().Set("bit_width", "9"))
                  .status()
                  .IsInvalidArgument());
  // BLA decay outside (0, 1].
  EXPECT_TRUE(
      EmbedderRegistry::Create("bla", EmbedderConfig().Set("decay", "1.5"))
          .status()
          .IsInvalidArgument());
  // Zero threads for parallel PANE.
  EXPECT_TRUE(
      EmbedderRegistry::Create("pane", EmbedderConfig().Set("threads", "0"))
          .status()
          .IsInvalidArgument());
}

TEST(EmbedderRegistryTest, EveryMethodTrainsOnTheRunningExample) {
  const AttributedGraph g = testing::Figure1Graph();
  for (const std::string& name : EmbedderRegistry::Names()) {
    SCOPED_TRACE(name);
    const auto embedder =
        EmbedderRegistry::Create(name, EmbedderConfig().Set("k", "4"));
    ASSERT_TRUE(embedder.ok()) << embedder.status();
    EXPECT_EQ(name, (*embedder)->name());
    const auto embedding = (*embedder)->Train(g);
    ASSERT_TRUE(embedding.ok()) << embedding.status();
    EXPECT_TRUE(embedding->Check().ok()) << embedding->Check();
    EXPECT_EQ(embedding->method, name);
    EXPECT_EQ(embedding->num_nodes(), g.num_nodes());
    for (int64_t j = 0; j < embedding->dim(); ++j) {
      EXPECT_TRUE(std::isfinite(embedding->features(0, j)));
    }
  }
}

TEST(EmbedderRegistryTest, EveryArtifactFeedsAllThreeAdapters) {
  const AttributedGraph g = testing::Figure1Graph();
  for (const std::string& name : EmbedderRegistry::Names()) {
    SCOPED_TRACE(name);
    const auto embedder =
        EmbedderRegistry::Create(name, EmbedderConfig().Set("k", "4"));
    ASSERT_TRUE(embedder.ok()) << embedder.status();
    auto trained = (*embedder)->Train(g);
    ASSERT_TRUE(trained.ok()) << trained.status();
    auto artifact =
        std::make_shared<const NodeEmbedding>(trained.MoveValueUnsafe());

    const auto link = MakeLinkScorer(artifact, g.undirected());
    ASSERT_TRUE(link.ok()) << link.status();
    EXPECT_TRUE(std::isfinite((*link)(0, 3)));

    const auto candidates = MakeCandidateLinkScorers(artifact, g.undirected());
    ASSERT_TRUE(candidates.ok()) << candidates.status();
    EXPECT_GE(candidates->size(), 1u);

    const auto attr = MakeAttributeScorer(artifact, g);
    ASSERT_TRUE(attr.ok()) << attr.status();
    EXPECT_TRUE(std::isfinite((*attr)(2, 0)));

    const DenseMatrix features = ClassifierFeatures(*artifact);
    EXPECT_EQ(features.rows(), g.num_nodes());
    EXPECT_GT(features.cols(), 0);
  }
}

TEST(EvaluateTest, AllMethodsRunTheThreeTaskDrivers) {
  const AttributedGraph g = testing::SmallSbm(95, 220);
  NodeClassificationOptions nc;
  nc.train_fraction = 0.5;
  nc.repeats = 1;
  for (const std::string& name : EmbedderRegistry::Names()) {
    SCOPED_TRACE(name);
    const auto embedder = EmbedderRegistry::Create(name, SmallConfig());
    ASSERT_TRUE(embedder.ok()) << embedder.status();

    const auto attr = RunAttributeInference(**embedder, g, 0.2, 5);
    ASSERT_TRUE(attr.ok()) << attr.status();
    EXPECT_GE(attr->auc, 0.0);
    EXPECT_LE(attr->auc, 1.0);

    const auto link = RunLinkPrediction(**embedder, g, 0.3, 5);
    ASSERT_TRUE(link.ok()) << link.status();
    EXPECT_GE(link->auc, 0.0);
    EXPECT_LE(link->auc, 1.0);

    const auto f1 = RunNodeClassification(**embedder, g, nc);
    ASSERT_TRUE(f1.ok()) << f1.status();
    EXPECT_GE(f1->micro, 0.0);
    EXPECT_LE(f1->micro, 1.0);
  }
}

TEST(EvaluateTest, PaneBeatsChanceThroughTheUnifiedSurface) {
  const AttributedGraph g = testing::SmallSbm(96, 300);
  const auto embedder = EmbedderRegistry::Create(
      "pane-seq", EmbedderConfig().Set("k", "16"));
  ASSERT_TRUE(embedder.ok()) << embedder.status();
  const auto link = RunLinkPrediction(**embedder, g, 0.3, 6);
  ASSERT_TRUE(link.ok()) << link.status();
  EXPECT_GT(link->auc, 0.6);
}

TEST(EvaluateTest, TadwDensificationGuardSurfacesAsError) {
  const AttributedGraph g = testing::SmallSbm(97, 150);
  const auto embedder = EmbedderRegistry::Create(
      "tadw", EmbedderConfig().Set("k", "8").Set("max_nodes", "100"));
  ASSERT_TRUE(embedder.ok()) << embedder.status();
  const auto link = RunLinkPrediction(**embedder, g, 0.3, 7);
  ASSERT_FALSE(link.ok());
  EXPECT_TRUE(link.status().IsInvalidArgument());
}

}  // namespace
}  // namespace pane
