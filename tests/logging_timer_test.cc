// Tests for logging levels / check macros and the timing utilities.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/common/timer.h"

namespace pane {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MessagesBelowLevelAreCheap) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  // Must not crash or emit; mostly a smoke test for the macro expansion.
  PANE_LOG(INFO) << "suppressed " << 42;
  PANE_LOG(ERROR) << "also suppressed";
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(PANE_CHECK(1 == 2) << "math broke", "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(PANE_CHECK_OK(Status::Internal("nope")), "nope");
}

TEST(LoggingTest, CheckPassesSilently) {
  PANE_CHECK(2 + 2 == 4) << "never printed";
  PANE_CHECK_OK(Status::OK());
}

TEST(WallTimerTest, MeasuresElapsed) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_GE(timer.ElapsedMicros(), 15000);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

TEST(ScopedTimerTest, AccumulatesIntoSink) {
  double sink = 0.0;
  {
    ScopedTimer t(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(sink, 0.008);
  {
    ScopedTimer t(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(sink, 0.016);  // accumulates, not overwrites
}

TEST(FormatDurationTest, Units) {
  EXPECT_EQ(FormatDuration(2.5 * 3600), "2.50 h");
  EXPECT_EQ(FormatDuration(90.0), "1.50 min");
  EXPECT_EQ(FormatDuration(2.0), "2.00 s");
  EXPECT_EQ(FormatDuration(0.5), "500.00 ms");
  EXPECT_EQ(FormatDuration(2e-5), "20 us");
}

}  // namespace
}  // namespace pane
