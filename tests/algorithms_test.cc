// Tests for the graph-analysis utilities.
#include "src/graph/algorithms.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "test_util.h"

namespace pane {
namespace {

AttributedGraph TwoComponents() {
  GraphBuilder builder(6, 1);
  builder.AddEdge(0, 1).AddEdge(1, 2);  // component {0,1,2}
  builder.AddEdge(3, 4);                // component {3,4}; node 5 isolated
  return builder.Build(false).ValueOrDie();
}

TEST(WccTest, CountsComponents) {
  const ComponentInfo info = WeaklyConnectedComponents(TwoComponents());
  EXPECT_EQ(info.num_components, 3);
  EXPECT_EQ(info.largest_size, 3);
  EXPECT_EQ(info.component_id[0], info.component_id[2]);
  EXPECT_EQ(info.component_id[3], info.component_id[4]);
  EXPECT_NE(info.component_id[0], info.component_id[3]);
  EXPECT_NE(info.component_id[5], info.component_id[0]);
}

TEST(WccTest, DirectionIgnored) {
  // 0 -> 1 <- 2: weakly connected even though no directed path 0 -> 2.
  GraphBuilder builder(3, 1);
  builder.AddEdge(0, 1).AddEdge(2, 1);
  const ComponentInfo info =
      WeaklyConnectedComponents(builder.Build(false).ValueOrDie());
  EXPECT_EQ(info.num_components, 1);
}

TEST(WccTest, SbmIsMostlyConnected) {
  const AttributedGraph g = testing::SmallSbm(131, 500);
  const ComponentInfo info = WeaklyConnectedComponents(g);
  EXPECT_GT(info.largest_size, 400);
}

TEST(BfsTest, DistancesAlongOutEdges) {
  const AttributedGraph g = TwoComponents();
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], -1);  // unreachable
  EXPECT_EQ(dist[5], -1);
}

TEST(BfsTest, RespectsDirection) {
  GraphBuilder builder(2, 1);
  builder.AddEdge(0, 1);
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  EXPECT_EQ(BfsDistances(g, 1)[0], -1);  // no back edge
}

TEST(DegreeStatsTest, HandComputed) {
  const AttributedGraph g = TwoComponents();
  const DegreeStats stats = OutDegreeStats(g);
  EXPECT_EQ(stats.max, 1);
  EXPECT_NEAR(stats.mean, 3.0 / 6.0, 1e-12);
  EXPECT_NEAR(stats.dangling_fraction, 3.0 / 6.0, 1e-12);  // nodes 2, 4, 5
}

TEST(DegreeStatsTest, GiniOrdersUniformVsSkewed) {
  // Erdos-Renyi degrees are near-uniform; Barabasi-Albert heavy-tailed.
  const DegreeStats er = OutDegreeStats(ErdosRenyi(2000, 10000, 1));
  const AttributedGraph ba = BarabasiAlbert(2000, 5, /*seed=*/2);
  // BA skew is in the in-degree; build stats over the transposed graph.
  GraphBuilder builder(2000, 1);
  for (int64_t u = 0; u < 2000; ++u) {
    const CsrMatrix::RowView row = ba.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) builder.AddEdge(row.cols[p], u);
  }
  const DegreeStats ba_in =
      OutDegreeStats(builder.Build(false).ValueOrDie());
  EXPECT_GT(ba_in.gini, er.gini + 0.1);
}

TEST(ReciprocityTest, HandComputed) {
  GraphBuilder builder(3, 1);
  builder.AddEdge(0, 1).AddEdge(1, 0).AddEdge(1, 2);  // 2 of 3 reciprocal
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  EXPECT_NEAR(EdgeReciprocity(g), 2.0 / 3.0, 1e-12);
}

TEST(ReciprocityTest, UndirectedIsOne) {
  const AttributedGraph g = testing::SmallSbm(132, 200, /*undirected=*/true);
  EXPECT_DOUBLE_EQ(EdgeReciprocity(g), 1.0);
}

TEST(ReciprocityTest, EmptyGraphIsZero) {
  GraphBuilder builder(3, 1);
  EXPECT_DOUBLE_EQ(EdgeReciprocity(builder.Build(false).ValueOrDie()), 0.0);
}

}  // namespace
}  // namespace pane
