// Unit tests for the Status / Result error-handling primitives.
#include "src/common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace pane {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad k");

  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NumericError("x").IsNumericError());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotImplemented),
               "Not implemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.MoveValueUnsafe();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  PANE_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
}

Status Chain(bool fail) {
  PANE_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_TRUE(Chain(true).IsInternal());
}

}  // namespace
}  // namespace pane
