// Tests for the synthetic graph generators: size targets, degree skew,
// community/attribute homophily — the properties the evaluation relies on.
#include "src/graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/datasets/registry.h"

namespace pane {
namespace {

TEST(ErdosRenyiTest, EdgeCountApproximate) {
  const AttributedGraph g = ErdosRenyi(500, 2000, 1);
  // Duplicates merge, so the realized count is slightly below the target.
  EXPECT_GT(g.num_edges(), 1900);
  EXPECT_LE(g.num_edges(), 2000);
  EXPECT_EQ(g.num_nodes(), 500);
}

TEST(ErdosRenyiTest, UndirectedIsSymmetric) {
  const AttributedGraph g = ErdosRenyi(100, 300, 2, /*undirected=*/true);
  const DenseMatrix a = g.adjacency().ToDense();
  for (int64_t i = 0; i < 100; ++i) {
    for (int64_t j = 0; j < 100; ++j) EXPECT_EQ(a(i, j), a(j, i));
  }
}

TEST(BarabasiAlbertTest, DegreeSkew) {
  const AttributedGraph g = BarabasiAlbert(2000, 3, 3);
  const auto in_deg = g.InDegrees();
  const int64_t max_deg = *std::max_element(in_deg.begin(), in_deg.end());
  const double avg =
      static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes());
  // Preferential attachment concentrates in-degree on hubs.
  EXPECT_GT(static_cast<double>(max_deg), 10.0 * avg);
}

SbmParams TestParams() {
  SbmParams p;
  p.num_nodes = 1000;
  p.num_edges = 6000;
  p.num_attributes = 100;
  p.num_attr_entries = 5000;
  p.num_communities = 5;
  p.edge_homophily = 0.85;
  p.attr_homophily = 0.85;
  p.seed = 4;
  return p;
}

TEST(SbmTest, SizesNearTargets) {
  // Heavy-tailed hub degrees collide inside communities, so realized counts
  // land somewhat under budget; within 20% keeps dataset ordering intact.
  const AttributedGraph g = GenerateAttributedSbm(TestParams());
  EXPECT_EQ(g.num_nodes(), 1000);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 6000.0, 1200.0);
  EXPECT_NEAR(static_cast<double>(g.num_attribute_entries()), 5000.0, 1000.0);
  EXPECT_EQ(g.num_label_classes(), 5);
}

TEST(SbmTest, CommunitiesBalanced) {
  const AttributedGraph g = GenerateAttributedSbm(TestParams());
  std::vector<int> counts(5, 0);
  for (const auto& labels : g.labels()) {
    ASSERT_EQ(labels.size(), 1u);
    ++counts[static_cast<size_t>(labels[0])];
  }
  for (int c : counts) EXPECT_EQ(c, 200);
}

TEST(SbmTest, EdgeHomophilyRealized) {
  const AttributedGraph g = GenerateAttributedSbm(TestParams());
  int64_t within = 0, across = 0;
  for (int64_t u = 0; u < g.num_nodes(); ++u) {
    const auto row = g.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      const int64_t v = row.cols[p];
      if (g.labels()[static_cast<size_t>(u)][0] ==
          g.labels()[static_cast<size_t>(v)][0]) {
        ++within;
      } else {
        ++across;
      }
    }
  }
  const double frac =
      static_cast<double>(within) / static_cast<double>(within + across);
  EXPECT_GT(frac, 0.7);  // target 0.85 minus duplicate-merge noise
}

TEST(SbmTest, AttributeHomophilyRealized) {
  const AttributedGraph g = GenerateAttributedSbm(TestParams());
  // Community i prefers attribute block [i*d/c, (i+1)*d/c).
  const int64_t d = g.num_attributes();
  const int32_t c = g.num_label_classes();
  int64_t in_block = 0, total = 0;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    const int32_t cv = g.labels()[static_cast<size_t>(v)][0];
    const int64_t lo = cv * d / c;
    const int64_t hi = (cv + 1) * d / c;
    const auto row = g.attributes().Row(v);
    for (int64_t p = 0; p < row.length; ++p) {
      total += 1;
      if (row.cols[p] >= lo && row.cols[p] < hi) ++in_block;
    }
  }
  EXPECT_GT(static_cast<double>(in_block) / static_cast<double>(total), 0.7);
}

TEST(SbmTest, UndirectedMode) {
  SbmParams p = TestParams();
  p.undirected = true;
  const AttributedGraph g = GenerateAttributedSbm(p);
  EXPECT_TRUE(g.undirected());
  const DenseMatrix a = g.adjacency().ToDense();
  for (int64_t i = 0; i < 50; ++i) {
    for (int64_t j = 0; j < 50; ++j) EXPECT_EQ(a(i, j), a(j, i));
  }
}

TEST(SbmTest, MultiLabelMode) {
  // Secondary labels come from the first out-neighbor's community, so they
  // duplicate the primary label whenever that edge is homophilous; lower
  // edge homophily to make distinct secondary labels common enough to count.
  SbmParams p = TestParams();
  p.labels_per_node = 3;
  p.edge_homophily = 0.5;
  const AttributedGraph g = GenerateAttributedSbm(p);
  size_t multi = 0;
  for (const auto& labels : g.labels()) multi += (labels.size() > 1);
  EXPECT_GT(multi, 100u);
  // Secondary labels must still be valid class ids.
  for (const auto& labels : g.labels()) {
    for (int32_t l : labels) {
      EXPECT_GE(l, 0);
      EXPECT_LT(l, p.num_communities);
    }
  }
}

TEST(SbmTest, DeterministicForSeed) {
  const AttributedGraph a = GenerateAttributedSbm(TestParams());
  const AttributedGraph b = GenerateAttributedSbm(TestParams());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.adjacency().ToDense().MaxAbsDiff(b.adjacency().ToDense()), 0.0);
}

TEST(DatasetRegistryTest, AllEightPresent) {
  EXPECT_EQ(AllDatasets().size(), 8u);
  EXPECT_EQ(SmallDatasets().size(), 5u);
  EXPECT_TRUE(FindDataset("cora").ok());
  EXPECT_TRUE(FindDataset("MAG").ok());
  EXPECT_FALSE(FindDataset("imaginary").ok());
}

TEST(DatasetRegistryTest, MakeDatasetScales) {
  const DatasetSpec spec = FindDataset("cora").ValueOrDie();
  const AttributedGraph half = MakeDataset(spec, 0.5);
  const AttributedGraph full = MakeDataset(spec, 1.0);
  EXPECT_LT(half.num_nodes(), full.num_nodes());
  EXPECT_LT(half.num_edges(), full.num_edges());
  EXPECT_TRUE(full.has_labels());
}

TEST(DatasetRegistryTest, UndirectedDatasetsMatchPaper) {
  EXPECT_TRUE(MakeDatasetByName("facebook", 0.2)->undirected());
  EXPECT_TRUE(MakeDatasetByName("flickr", 0.2)->undirected());
  EXPECT_FALSE(MakeDatasetByName("cora", 0.2)->undirected());
}

}  // namespace
}  // namespace pane
