// google-benchmark microbenchmarks for the kernels PANE's complexity
// analysis is built on: SpMM (the O(md t) affinity phase), GEMM / RandSVD
// (the O(ndk t) initialization), one CCD sweep (the O(ndk) refinement), and
// the ablation of incremental residual maintenance (Equations 18-20)
// against naive recomputation.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/core/apmi.h"
#include "src/core/ccd.h"
#include "src/core/greedy_init.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"
#include "src/graph/text_parser.h"
#include "src/matrix/gemm.h"
#include "src/matrix/rand_svd.h"
#include "src/matrix/spmm.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

AttributedGraph BenchGraph(int64_t n) {
  SbmParams params;
  params.num_nodes = n;
  params.num_edges = 10 * n;
  params.num_attributes = 200;
  params.num_attr_entries = 10 * n;
  params.num_communities = 8;
  params.seed = 77;
  return GenerateAttributedSbm(params);
}

void BM_SpMM(benchmark::State& state) {
  const int64_t n = state.range(0);
  const AttributedGraph g = BenchGraph(n);
  const CsrMatrix p = g.RandomWalkMatrix();
  Rng rng(1);
  DenseMatrix x(n, 64);
  x.FillGaussian(&rng);
  DenseMatrix out;
  for (auto _ : state) {
    SpMM(p, x, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * p.nnz() * 64);
}
BENCHMARK(BM_SpMM)->Arg(2000)->Arg(8000);

void BM_SpMMParallel(benchmark::State& state) {
  const int64_t n = 8000;
  const AttributedGraph g = BenchGraph(n);
  const CsrMatrix p = g.RandomWalkMatrix();
  Rng rng(1);
  DenseMatrix x(n, 64);
  x.FillGaussian(&rng);
  DenseMatrix out;
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SpMM(p, x, &out, &pool);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SpMMParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_SpMV(benchmark::State& state) {
  const int64_t n = 8000;
  const AttributedGraph g = BenchGraph(n);
  const CsrMatrix p = g.RandomWalkMatrix();
  std::vector<double> x(static_cast<size_t>(n), 1.0);
  std::vector<double> y;
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SpMV(p, x, &y, &pool);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * p.nnz());
}
BENCHMARK(BM_SpMV)->Arg(1)->Arg(4);

// --- Ingestion kernels -----------------------------------------------------

// ~200k-line "u v" edge text, the input shape of LoadGraphText / the SNAP
// edge-list reader.
std::string EdgeText(int64_t lines) {
  const AttributedGraph g = ErdosRenyi(lines / 8, lines, /*seed=*/5);
  std::string text;
  for (int64_t u = 0; u < g.num_nodes(); ++u) {
    const CsrMatrix::RowView row = g.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      text += std::to_string(u) + ' ' + std::to_string(row.cols[p]) + '\n';
    }
  }
  return text;
}

// Baseline: the legacy `istream >>` token loop the chunked parser replaced.
void BM_ParseEdgeTextIstream(benchmark::State& state) {
  const std::string text = EdgeText(200000);
  for (auto _ : state) {
    std::istringstream in(text);
    std::vector<Triplet> triplets;
    int64_t u = 0, v = 0;
    while (in >> u >> v) triplets.push_back(Triplet{u, v, 1.0});
    benchmark::DoNotOptimize(triplets.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseEdgeTextIstream);

void BM_ParseEdgeTextChunked(benchmark::State& state) {
  const std::string text = EdgeText(200000);
  ThreadPool pool(static_cast<int>(state.range(0)));
  TripletParseOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    auto triplets = ParseTriplets(text, options);
    benchmark::DoNotOptimize(triplets.ValueOrDie().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseEdgeTextChunked)->Arg(1)->Arg(4)->Arg(10);

// Binary snapshot reload: bounded reads + direct CSR adoption (no per-edge
// rebuild).
void BM_LoadGraphBinary(benchmark::State& state) {
  const AttributedGraph g = BenchGraph(20000);
  const std::string path =
      (std::filesystem::temp_directory_path() / "pane_micro_graph.bin")
          .string();
  PANE_CHECK_OK(SaveGraphBinary(g, path));
  const int64_t bytes =
      static_cast<int64_t>(std::filesystem::file_size(path));
  for (auto _ : state) {
    auto loaded = LoadGraphBinary(path);
    benchmark::DoNotOptimize(loaded.ValueOrDie().num_edges());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  std::error_code ec;
  std::filesystem::remove(path, ec);
}
BENCHMARK(BM_LoadGraphBinary);

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  DenseMatrix a(n, 200), b(200, 64), c;
  a.FillGaussian(&rng);
  b.FillGaussian(&rng);
  for (auto _ : state) {
    Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 200 * 64);
}
BENCHMARK(BM_Gemm)->Arg(2000)->Arg(8000);

void BM_RandSvd(benchmark::State& state) {
  Rng rng(3);
  DenseMatrix m(static_cast<int64_t>(state.range(0)), 200);
  m.FillGaussian(&rng);
  RandSvdOptions options;
  options.power_iters = 6;
  DenseMatrix u, v;
  std::vector<double> sigma;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RandSvd(m, 64, options, &u, &sigma, &v).ok());
  }
}
BENCHMARK(BM_RandSvd)->Arg(2000)->Arg(4000);

void BM_ApmiIterationCost(benchmark::State& state) {
  const AttributedGraph g = BenchGraph(state.range(0));
  const CsrMatrix p = g.RandomWalkMatrix();
  const CsrMatrix pt = p.Transposed();
  ApmiInputs inputs;
  inputs.p = &p;
  inputs.p_transposed = &pt;
  inputs.r = &g.attributes();
  inputs.alpha = 0.5;
  inputs.t = 6;
  for (auto _ : state) {
    auto result = Apmi(inputs);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ApmiIterationCost)->Arg(2000)->Arg(8000);

void BM_CcdSweep(benchmark::State& state) {
  const AttributedGraph g = BenchGraph(state.range(0));
  const AffinityMatrices affinity =
      ComputeAffinity(g, 0.5, 0.015).ValueOrDie();
  const auto seed_state = GreedyInit(affinity, 64, 6).ValueOrDie();
  for (auto _ : state) {
    EmbeddingState working = seed_state;
    CcdOptions options;
    options.iterations = 1;
    benchmark::DoNotOptimize(CcdRefine(&working, options).ok());
  }
}
BENCHMARK(BM_CcdSweep)->Arg(2000)->Arg(4000);

// Ablation: the incremental residual maintenance of Equations (18)-(20)
// vs recomputing Sf = Xf Y^T - F' from scratch after a sweep. The paper's
// design avoids the full n x d GEMM per coordinate pass.
void BM_ResidualIncremental(benchmark::State& state) {
  const AttributedGraph g = BenchGraph(2000);
  const AffinityMatrices affinity =
      ComputeAffinity(g, 0.5, 0.015).ValueOrDie();
  auto working = GreedyInit(affinity, 64, 6).ValueOrDie();
  CcdOptions options;
  options.iterations = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CcdRefine(&working, options).ok());
  }
}
BENCHMARK(BM_ResidualIncremental);

void BM_ResidualRecompute(benchmark::State& state) {
  const AttributedGraph g = BenchGraph(2000);
  const AffinityMatrices affinity =
      ComputeAffinity(g, 0.5, 0.015).ValueOrDie();
  const auto seed_state = GreedyInit(affinity, 64, 6).ValueOrDie();
  DenseMatrix sf, sb;
  for (auto _ : state) {
    GemmTransBAddScaled(seed_state.xf, seed_state.y, 1.0, affinity.forward,
                        -1.0, &sf);
    GemmTransBAddScaled(seed_state.xb, seed_state.y, 1.0, affinity.backward,
                        -1.0, &sb);
    benchmark::DoNotOptimize(sf.data());
  }
}
BENCHMARK(BM_ResidualRecompute);

}  // namespace
}  // namespace pane

BENCHMARK_MAIN();
