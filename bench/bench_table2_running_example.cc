// Table 2 reproduction: exact forward/backward affinity targets on the
// Figure 1 running example (alpha = 0.15), cross-checked three ways:
//   1. the dense power-series reference (the printed targets),
//   2. Monte-Carlo random walks on the extended graph (the definition),
//   3. the inner products of a trained PANE embedding (what Equation (4)
//      asks the factorization to reproduce).
#include <cstdio>

#include "bench_common.h"
#include "src/core/affinity.h"
#include "src/core/pane.h"
#include "src/datasets/running_example.h"
#include "src/graph/random_walk.h"

namespace pane {
namespace {

void Run() {
  const AttributedGraph g = MakeFigure1Example();
  const double alpha = 0.15;

  const auto exact = ExactAffinity(g, alpha).ValueOrDie();

  // Monte-Carlo estimate of the same quantities.
  WalkSimulator sim(g, alpha, /*seed=*/2024);
  ProbabilityMatrices mc;
  mc.pf = sim.EstimateForwardProbabilities(200000);
  mc.pb = sim.EstimateBackwardProbabilities(200000);
  const AffinityMatrices mc_affinity = SpmiFromProbabilities(mc);

  // PANE factorization at full rank (k/2 = d = 3) — the embedding's inner
  // products should reproduce the targets closely.
  PaneOptions options;
  options.k = 6;
  options.alpha = alpha;
  options.epsilon = 1e-9;  // effectively exact affinity
  options.ccd_iterations = 30;
  const auto embedding = Pane(options).Train(g).ValueOrDie();

  bench::PrintHeader(
      "Table 2: targets for X[vi] . Y[rj]  (Figure 1 example, alpha=0.15)",
      "columns: exact | monte-carlo | Xf.Y (trained)   for r1 r2 r3");

  bench::PrintRow("node", {"F r1", "F r2", "F r3", "B r1", "B r2", "B r3"},
                  14, 8);
  const char* names[] = {"v1", "v2", "v3", "v4", "v5", "v6"};
  auto print_block = [&](const char* tag, const DenseMatrix& f,
                         const DenseMatrix& b) {
    std::printf("--- %s\n", tag);
    for (int64_t v = 0; v < 6; ++v) {
      std::vector<std::string> cells;
      for (int64_t r = 0; r < 3; ++r) cells.push_back(bench::Cell(f(v, r)));
      for (int64_t r = 0; r < 3; ++r) cells.push_back(bench::Cell(b(v, r)));
      bench::PrintRow(names[v], cells, 14, 8);
    }
  };
  print_block("exact power series", exact.forward, exact.backward);
  print_block("monte-carlo walks (200k/source)", mc_affinity.forward,
              mc_affinity.backward);

  // Trained inner products.
  DenseMatrix f_hat(6, 3), b_hat(6, 3);
  for (int64_t v = 0; v < 6; ++v) {
    for (int64_t r = 0; r < 3; ++r) {
      double f = 0.0, b = 0.0;
      for (int64_t l = 0; l < embedding.xf.cols(); ++l) {
        f += embedding.xf(v, l) * embedding.y(r, l);
        b += embedding.xb(v, l) * embedding.y(r, l);
      }
      f_hat(v, r) = f;
      b_hat(v, r) = b;
    }
  }
  print_block("PANE embedding inner products", f_hat, b_hat);

  std::printf(
      "\nmax |exact - monte-carlo| = %.4f (sampling noise)\n"
      "max |exact - embedding|   = %.4f (factorization error)\n",
      std::max(exact.forward.MaxAbsDiff(mc_affinity.forward),
               exact.backward.MaxAbsDiff(mc_affinity.backward)),
      std::max(exact.forward.MaxAbsDiff(f_hat),
               exact.backward.MaxAbsDiff(b_hat)));

  std::printf(
      "\nqualitative checks from Section 2.3:\n"
      "  v1 forward affinity:  F(v1,r1)=%.3f > F(v1,r3)=%.3f  [%s]\n"
      "  v6 specialist:        F(v6,r3)=%.3f > F(v6,r1)=%.3f  [%s]\n"
      "  v5 backward resolves: B(v5,r1)=%.3f > B(v5,r3)=%.3f  [%s]\n",
      exact.forward(0, 0), exact.forward(0, 2),
      exact.forward(0, 0) > exact.forward(0, 2) ? "ok" : "MISMATCH",
      exact.forward(5, 2), exact.forward(5, 0),
      exact.forward(5, 2) > exact.forward(5, 0) ? "ok" : "MISMATCH",
      exact.backward(4, 0), exact.backward(4, 2),
      exact.backward(4, 0) > exact.backward(4, 2) ? "ok" : "MISMATCH");
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
