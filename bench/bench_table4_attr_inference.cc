// Table 4 reproduction: attribute-inference AUC / AP on all eight datasets.
// Methods: the BLA-like inference baseline, PANE (single thread), PANE
// (parallel, nb = 10). CAN — the only embedding competitor able to infer
// attributes — is a GPU graph-convolutional VAE and is out of scope for
// this CPU reproduction (see DESIGN.md); the paper reports it failing
// beyond the five small datasets anyway. Expected shape: PANE columns
// dominate BLA everywhere; parallel PANE within a whisker of single-thread.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "src/baselines/bla_like.h"
#include "src/datasets/registry.h"
#include "src/tasks/attribute_inference.h"

namespace pane {
namespace {

void Run() {
  bench::PrintHeader(
      "Table 4: attribute inference (AUC / AP)",
      "paper shape: PANE best everywhere; CAN/BLA fail on large datasets");
  bench::PrintRow("dataset",
                  {"BLA auc", "BLA ap", "PANEst.a", "PANEst.p", "PANEpar.a",
                   "PANEpar.p"});

  const double scale = bench::BenchScale();
  for (const DatasetSpec& spec : AllDatasets()) {
    const AttributedGraph g = MakeDataset(spec, scale);
    const auto split = SplitAttributes(g, 0.2, /*seed=*/7).ValueOrDie();

    AucAp bla{NAN, NAN};
    {
      const auto model = TrainBlaLike(split.train_graph, BlaLikeOptions{});
      if (model.ok()) {
        bla = EvaluateAttributeInference(split, [&](int64_t v, int64_t r) {
          return model->Score(v, r);
        });
      }
    }

    const auto single = bench::TrainPaneOrDie(split.train_graph, 128, 1);
    const AucAp single_result =
        EvaluateAttributeInference(split, [&](int64_t v, int64_t r) {
          return single.embedding.AttributeScore(v, r);
        });

    const auto parallel = bench::TrainPaneOrDie(split.train_graph, 128, 10);
    const AucAp parallel_result =
        EvaluateAttributeInference(split, [&](int64_t v, int64_t r) {
          return parallel.embedding.AttributeScore(v, r);
        });

    bench::PrintRow(spec.name,
                    {bench::Cell(bla.auc), bench::Cell(bla.ap),
                     bench::Cell(single_result.auc),
                     bench::Cell(single_result.ap),
                     bench::Cell(parallel_result.auc),
                     bench::Cell(parallel_result.ap)});
  }
  std::printf(
      "\n(CAN: GPU autoencoder, not reproduced — see DESIGN.md "
      "substitutions; paper Table 4 shows it trailing PANE by 5-15 points "
      "on the datasets it completes.)\n");
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
