// Table 4 reproduction: attribute-inference AUC / AP on all eight datasets.
// Methods: the BLA-like inference baseline, PANE (single thread), PANE
// (parallel, nb = 10), all through the unified EmbedderRegistry +
// RunAttributeInference surface (BLA's direct score matrix and PANE's
// Equation 21 both flow through the NodeEmbedding attribute adapter). CAN —
// the only embedding competitor able to infer attributes — is a GPU graph-
// convolutional VAE and is out of scope for this CPU reproduction (see
// DESIGN.md); the paper reports it failing beyond the five small datasets
// anyway. Expected shape: PANE columns dominate BLA everywhere; parallel
// PANE within a whisker of single-thread.
#include <cstdio>

#include "bench_common.h"
#include "src/api/evaluate.h"
#include "src/api/registry.h"
#include "src/common/logging.h"
#include "src/datasets/registry.h"

namespace pane {
namespace {

struct MethodColumn {
  std::string label;
  std::string method;
  EmbedderConfig config;
};

std::vector<MethodColumn> Columns() {
  std::vector<MethodColumn> columns;
  columns.push_back({"BLA", "bla", EmbedderConfig()});
  columns.push_back({"PANEst", "pane-seq", EmbedderConfig()});
  columns.push_back({"PANEpar", "pane", EmbedderConfig().Set("threads", "10")});
  return columns;
}

void Run() {
  bench::PrintHeader(
      "Table 4: attribute inference (AUC / AP)",
      "paper shape: PANE best everywhere; CAN/BLA fail on large datasets");
  const std::vector<MethodColumn> columns = Columns();
  std::vector<std::string> labels;
  for (const MethodColumn& c : columns) {
    labels.push_back(c.label + ".a");
    labels.push_back(c.label + ".p");
  }
  bench::PrintRow("dataset", labels);

  const double scale = bench::BenchScale();
  for (const DatasetSpec& spec : AllDatasets()) {
    const AttributedGraph g = MakeDataset(spec, scale);
    std::vector<std::string> cells;
    for (const MethodColumn& column : columns) {
      const auto embedder =
          EmbedderRegistry::Create(column.method, column.config);
      PANE_CHECK(embedder.ok()) << embedder.status();
      const auto r = RunAttributeInference(**embedder, g, 0.2, /*seed=*/7);
      if (r.ok()) {
        cells.push_back(bench::Cell(r->auc));
        cells.push_back(bench::Cell(r->ap));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }
    bench::PrintRow(spec.name, cells);
  }
  std::printf(
      "\n(CAN: GPU autoencoder, not reproduced — see DESIGN.md "
      "substitutions; paper Table 4 shows it trailing PANE by 5-15 points "
      "on the datasets it completes.)\n");
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
