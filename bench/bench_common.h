// Shared harness bits for the table / figure reproduction binaries: dataset
// construction at bench scale, method runners, and row printing that mirrors
// the paper's tables.
#pragma once

#include <string>
#include <vector>

#include "src/core/pane.h"
#include "src/graph/graph.h"

namespace pane {
namespace bench {

/// Global scale multiplier from PANE_BENCH_SCALE (default 1.0). Dataset
/// sizes (n, m, |E_R|) are multiplied by it, so `PANE_BENCH_SCALE=4` runs
/// the sweep at 4x the default sizes.
double BenchScale();

/// Prints a section header for a table / figure.
void PrintHeader(const std::string& title, const std::string& subtitle);

/// Prints one "name: value value ..." row with fixed-width columns.
void PrintRow(const std::string& name, const std::vector<std::string>& cells,
              int name_width = 22, int cell_width = 9);

/// "0.913" fixed three-decimal cell, or "-" for NaN (method not run).
std::string Cell(double value);

/// Duration cell ("1.23s" / "456ms"), or "-" for negative (not run).
std::string TimeCell(double seconds);

/// Lifetime peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status), or -1 where unavailable. Monotone: to compare the
/// footprint of several configurations in one process, run the smallest
/// first and watch the high-water mark move.
int64_t PeakRssBytes();

/// "123.4MB" cell, or "-" for negative (unavailable).
std::string MegabyteCell(double bytes);

/// Escapes `text` for embedding inside a JSON string literal: quotes,
/// backslashes, and control bytes (\n, \t, \u00XX).
std::string JsonEscape(const std::string& text);

/// A JSON number cell: finite values print with enough precision to
/// round-trip; NaN / infinity (invalid JSON) print as null.
std::string JsonNumber(double value);

/// Writes one telemetry snapshot (the --json=PATH sink of the bench
/// binaries) and logs the destination to stderr. Fatal on I/O failure —
/// a bench asked for telemetry must not silently drop it.
void WriteJsonFile(const std::string& path, const std::string& json);

/// Trains PANE with paper-default alpha / epsilon. `memory_budget_mb` is
/// the whole-pipeline budget of PaneOptions; `slab_policy` can force the
/// factor backing for in-RAM vs mmap-spill comparisons at a fixed budget.
struct PaneRun {
  PaneEmbedding embedding;
  PaneStats stats;
};
PaneRun TrainPaneOrDie(const AttributedGraph& graph, int k, int num_threads,
                       double alpha = 0.5, double epsilon = 0.015,
                       bool greedy_init = true, int ccd_iterations = 0,
                       int64_t memory_budget_mb = 0,
                       SlabPolicy slab_policy = SlabPolicy::kAuto,
                       SpillMode spill_mode = SpillMode::kPooled);

}  // namespace bench
}  // namespace pane
