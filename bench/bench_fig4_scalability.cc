// Figure 4 reproduction: PANE efficiency with varying parameters on the two
// large social-network datasets (Google+- and TWeibo-like):
//   4a. parallel speedup vs number of threads nb in {1, 2, 5, 10, 20}
//   4b. running time vs space budget k in {16, 32, 64, 128, 256}
//   4c. running time vs error threshold eps in {0.001 ... 0.25}
// Expected shape: 4a near-linear until the physical core count saturates;
// 4b flat-ish slow growth; 4c time dropping ~10x from eps=0.001 to 0.25.
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "src/datasets/registry.h"

namespace pane {
namespace {

void Run() {
  const double scale = bench::BenchScale();
  const std::vector<std::string> dataset_names = {"google+", "tweibo"};

  bench::PrintHeader("Figure 4a: parallel speedup vs nb",
                     "speedup = time(nb=1) / time(nb); hardware threads "
                     "here: " + std::to_string(std::thread::hardware_concurrency()));
  bench::PrintRow("dataset", {"nb=1", "nb=2", "nb=5", "nb=10", "nb=20"});
  for (const std::string& name : dataset_names) {
    const AttributedGraph g = *MakeDatasetByName(name, scale);
    double base = 0.0;
    std::vector<std::string> cells;
    for (const int nb : {1, 2, 5, 10, 20}) {
      const auto run = bench::TrainPaneOrDie(g, 128, nb);
      if (nb == 1) base = run.stats.total_seconds;
      // At small bench scale a run can finish in ~0s; a ratio against that
      // prints inf/nan, so emit n/a instead.
      constexpr double kMinMeasurable = 1e-6;
      if (base < kMinMeasurable || run.stats.total_seconds < kMinMeasurable) {
        cells.push_back("n/a");
      } else {
        cells.push_back(bench::Cell(base / run.stats.total_seconds));
      }
    }
    bench::PrintRow(name, cells);
  }

  bench::PrintHeader("Figure 4b: running time (s) vs space budget k",
                     "paper shape: slow growth in k");
  bench::PrintRow("dataset", {"k=16", "k=32", "k=64", "k=128", "k=256"});
  for (const std::string& name : dataset_names) {
    const AttributedGraph g = *MakeDatasetByName(name, scale);
    std::vector<std::string> cells;
    for (const int k : {16, 32, 64, 128, 256}) {
      const auto run = bench::TrainPaneOrDie(g, k, 10);
      cells.push_back(bench::TimeCell(run.stats.total_seconds));
    }
    bench::PrintRow(name, cells);
  }

  bench::PrintHeader("Figure 4c: running time (s) vs error threshold eps",
                     "paper shape: ~10x drop from eps=0.001 to eps=0.25 "
                     "(time linear in log(1/eps))");
  bench::PrintRow("dataset",
                  {"0.001", "0.005", "0.015", "0.05", "0.25"});
  for (const std::string& name : dataset_names) {
    const AttributedGraph g = *MakeDatasetByName(name, scale);
    std::vector<std::string> cells;
    for (const double eps : {0.001, 0.005, 0.015, 0.05, 0.25}) {
      const auto run = bench::TrainPaneOrDie(g, 128, 10, 0.5, eps);
      cells.push_back(bench::TimeCell(run.stats.total_seconds));
    }
    bench::PrintRow(name, cells);
  }
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
