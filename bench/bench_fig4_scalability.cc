// Figure 4 reproduction: PANE efficiency with varying parameters on the two
// large social-network datasets (Google+- and TWeibo-like):
//   4a. parallel speedup vs number of threads nb in {1, 2, 5, 10, 20}
//   4b. running time vs space budget k in {16, 32, 64, 128, 256}
//   4c. running time vs error threshold eps in {0.001 ... 0.25}
// Expected shape: 4a near-linear until the physical core count saturates;
// 4b flat-ish slow growth; 4c time dropping ~10x from eps=0.001 to 0.25.
//   4d (extension): peak RSS and throughput under --memory-budget-mb —
//       first the affinity phase alone across budgets, then the whole
//       pipeline (affinity + init + CCD) comparing the in-RAM and
//       mmap-spill slab backings at one fixed budget against the unbounded
//       run. Tight budgets must hold the process high-water mark below the
//       unbounded run at equal threads; the spill backing must hold it
//       near budget + the output-slab floor.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/common/timer.h"
#include "src/core/apmi.h"
#include "src/datasets/registry.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

// Affinity phase only, budgets tightest-first (VmHWM is monotone: each row's
// peak-RSS increase is attributable to that row's larger scratch; the
// unbounded run goes last so a budget violation is visible as the final
// jump).
// Whole-pipeline rows for the 4d extension: affinity + init + CCD at one
// fixed budget, spill-forced first (smallest footprint; VmHWM is monotone),
// then the in-RAM backing at the same budget, then unbounded last. The
// spill row's delta is the bounded-memory claim: scratch + streaming floors
// instead of the 4 n d factor set.
void RunWholePipelineBudgetSection(const AttributedGraph& g,
                                   int64_t budget_mb) {
  bench::PrintHeader(
      "Figure 4d (extension): whole pipeline vs --memory-budget-mb",
      "full Train (affinity + init + CCD), k=64, nb=10; in-RAM vs "
      "mmap-spill at one fixed budget, unbounded last (VmHWM monotone)");
  struct Config {
    const char* name;
    int64_t budget_mb;
    SlabPolicy policy;
    SpillMode spill_mode;
  };
  const Config configs[] = {
      {"pooled spill @budget", budget_mb, SlabPolicy::kMmap,
       SpillMode::kPooled},
      {"flat spill @budget", budget_mb, SlabPolicy::kMmap, SpillMode::kFlat},
      {"in-RAM @budget", budget_mb, SlabPolicy::kInRam, SpillMode::kPooled},
      {"unbounded", 0, SlabPolicy::kInRam, SpillMode::kPooled},
  };
  bench::PrintRow("config", {"width", "panels", "scratch", "slabs",
                             "overlap", "peak RSS", "dRSS", "time"});
  for (const Config& config : configs) {
    const int64_t rss_before = bench::PeakRssBytes();
    const auto run = bench::TrainPaneOrDie(g, /*k=*/64, /*num_threads=*/10,
                                           0.5, 0.015, /*greedy_init=*/true,
                                           /*ccd_iterations=*/0,
                                           config.budget_mb, config.policy,
                                           config.spill_mode);
    const int64_t rss_after = bench::PeakRssBytes();
    bench::PrintRow(
        config.name,
        {StrFormat("%lld", static_cast<long long>(
                               run.stats.affinity.panel_width)),
         StrFormat("%lld",
                   static_cast<long long>(run.stats.affinity.num_panels)),
         bench::MegabyteCell(
             static_cast<double>(run.stats.affinity.scratch_bytes +
                                 run.stats.ccd.scratch_bytes)),
         !run.stats.slabs_spilled ? "RAM"
                                  : (run.stats.pooled_spill ? "pool" : "mmap"),
         StrFormat("%d", run.stats.init_blocks_overlapped),
         bench::MegabyteCell(static_cast<double>(rss_after)),
         rss_before < 0 || rss_after < 0
             ? "-"
             : bench::MegabyteCell(
                   static_cast<double>(rss_after - rss_before)),
         bench::TimeCell(run.stats.total_seconds)});
  }
}

void RunMemoryBudgetSection(double scale) {
  bench::PrintHeader(
      "Figure 4d (extension): affinity phase vs --memory-budget-mb",
      "panel-streamed engine; peak RSS is the process high-water mark "
      "(monotone), throughput counts streamed series cells");
  // Default shape follows the google+ stand-in at bench scale; the
  // acceptance-scale run (n >= 100k, d >= 1k) is reachable directly with
  // PANE_BENCH_AFFINITY_N=100000 PANE_BENCH_AFFINITY_D=1000 without also
  // inflating the earlier figure sections.
  const int64_t env_n =
      static_cast<int64_t>(EnvDoubleOr("PANE_BENCH_AFFINITY_N", 0.0));
  const int64_t env_d =
      static_cast<int64_t>(EnvDoubleOr("PANE_BENCH_AFFINITY_D", 1000.0));
  AttributedGraph g;
  if (env_n > 0) {
    SbmParams params;
    params.num_nodes = env_n;
    params.num_edges = 10 * env_n;
    params.num_attributes = env_d;
    params.num_attr_entries = 10 * env_n;
    params.num_communities = 20;
    params.seed = 4242;
    g = GenerateAttributedSbm(params);
  } else {
    g = *MakeDatasetByName("google+", scale);
  }
  const int64_t n = g.num_nodes();
  const int64_t d = g.num_attributes();
  const int nb = 10;
  ThreadPool pool(nb);
  const int t = ComputeIterationCount(0.015, 0.5);
  // The unbounded pooled path keeps ~2 n d doubles of panel scratch in
  // flight; sweep budgets at fractions of that, tightest first.
  const int64_t unbounded_mb =
      (2 * static_cast<int64_t>(sizeof(double)) * n * d) >> 20;
  std::printf("%s: n=%lld d=%lld t=%d nb=%d, output slabs %s, unbounded "
              "scratch ~%lldMB\n",
              env_n > 0 ? "generated sbm" : "google+ at bench scale",
              static_cast<long long>(n), static_cast<long long>(d), t, nb,
              bench::MegabyteCell(16.0 * n * d).c_str(),
              static_cast<long long>(unbounded_mb));
  // Fractions of the unbounded scratch, deduplicated (at tiny bench scales
  // they all collapse to the 1 MiB floor), unbounded last.
  std::vector<int64_t> budgets_mb;
  for (const int64_t divisor : {8, 4, 2}) {
    const int64_t budget = std::max<int64_t>(1, unbounded_mb / divisor);
    if (budgets_mb.empty() || budgets_mb.back() != budget) {
      budgets_mb.push_back(budget);
    }
  }
  budgets_mb.push_back(0);
  bench::PrintRow("budget", {"width", "panels", "scratch", "peak RSS",
                             "dRSS", "time", "Mcell/s"});
  for (const int64_t budget : budgets_mb) {
    // VmHWM is process-lifetime monotone (and already includes the earlier
    // figure sections), so the per-row delta is what attributes growth to
    // this row's scratch; rows that fit under the existing high-water mark
    // report a 0 delta.
    const int64_t rss_before = bench::PeakRssBytes();
    WallTimer timer;
    AffinityEngineStats stats;
    const auto affinity = ComputeAffinity(g, 0.5, 0.015, &pool, budget, &stats);
    PANE_CHECK(affinity.ok()) << affinity.status();
    const double seconds = timer.ElapsedSeconds();
    const int64_t rss_after = bench::PeakRssBytes();
    const double cells = 2.0 * n * d * (t + 1);
    constexpr double kMinMeasurable = 1e-6;
    bench::PrintRow(
        budget == 0 ? "unbounded" : StrFormat("%lldMiB",
                                              static_cast<long long>(budget)),
        {StrFormat("%lld", static_cast<long long>(stats.panel_width)),
         StrFormat("%lld", static_cast<long long>(stats.num_panels)),
         bench::MegabyteCell(static_cast<double>(stats.scratch_bytes)),
         bench::MegabyteCell(static_cast<double>(rss_after)),
         rss_before < 0 || rss_after < 0
             ? "-"
             : bench::MegabyteCell(static_cast<double>(rss_after - rss_before)),
         bench::TimeCell(seconds),
         seconds < kMinMeasurable ? "n/a"
                                  : bench::Cell(cells / seconds / 1e6)});
  }

  RunWholePipelineBudgetSection(g, std::max<int64_t>(1, unbounded_mb / 4));
}

/// One (x-label, seconds) series per dataset, rendered into the --json
/// snapshot as {"<dataset>": {"<label>": seconds, ...}, ...}.
std::string JsonSeries(
    const std::vector<std::pair<std::string, std::vector<std::pair<
        std::string, double>>>>& datasets) {
  std::string out = "{";
  for (size_t i = 0; i < datasets.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + bench::JsonEscape(datasets[i].first) + "\": {";
    const auto& series = datasets[i].second;
    for (size_t j = 0; j < series.size(); ++j) {
      out += j == 0 ? "" : ", ";
      out += "\"" + bench::JsonEscape(series[j].first) +
             "\": " + bench::JsonNumber(series[j].second);
    }
    out += "}";
  }
  out += "\n  }";
  return out;
}

void Run(const std::string& json_path) {
  const double scale = bench::BenchScale();
  const std::vector<std::string> dataset_names = {"google+", "tweibo"};
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, double>>>>
      speedup_series, k_series, eps_series;

  bench::PrintHeader("Figure 4a: parallel speedup vs nb",
                     "speedup = time(nb=1) / time(nb); hardware threads "
                     "here: " + std::to_string(std::thread::hardware_concurrency()));
  bench::PrintRow("dataset", {"nb=1", "nb=2", "nb=5", "nb=10", "nb=20"});
  for (const std::string& name : dataset_names) {
    const AttributedGraph g = *MakeDatasetByName(name, scale);
    double base = 0.0;
    std::vector<std::string> cells;
    std::vector<std::pair<std::string, double>> series;
    for (const int nb : {1, 2, 5, 10, 20}) {
      const auto run = bench::TrainPaneOrDie(g, 128, nb);
      if (nb == 1) base = run.stats.total_seconds;
      // At small bench scale a run can finish in ~0s; a ratio against that
      // prints inf/nan, so emit n/a instead (NaN renders as JSON null).
      constexpr double kMinMeasurable = 1e-6;
      double speedup = std::numeric_limits<double>::quiet_NaN();
      if (base >= kMinMeasurable && run.stats.total_seconds >= kMinMeasurable) {
        speedup = base / run.stats.total_seconds;
      }
      cells.push_back(std::isnan(speedup) ? "n/a" : bench::Cell(speedup));
      series.emplace_back("nb=" + std::to_string(nb), speedup);
    }
    bench::PrintRow(name, cells);
    speedup_series.emplace_back(name, std::move(series));
  }

  bench::PrintHeader("Figure 4b: running time (s) vs space budget k",
                     "paper shape: slow growth in k");
  bench::PrintRow("dataset", {"k=16", "k=32", "k=64", "k=128", "k=256"});
  for (const std::string& name : dataset_names) {
    const AttributedGraph g = *MakeDatasetByName(name, scale);
    std::vector<std::string> cells;
    std::vector<std::pair<std::string, double>> series;
    for (const int k : {16, 32, 64, 128, 256}) {
      const auto run = bench::TrainPaneOrDie(g, k, 10);
      cells.push_back(bench::TimeCell(run.stats.total_seconds));
      series.emplace_back("k=" + std::to_string(k),
                          run.stats.total_seconds);
    }
    bench::PrintRow(name, cells);
    k_series.emplace_back(name, std::move(series));
  }

  bench::PrintHeader("Figure 4c: running time (s) vs error threshold eps",
                     "paper shape: ~10x drop from eps=0.001 to eps=0.25 "
                     "(time linear in log(1/eps))");
  bench::PrintRow("dataset",
                  {"0.001", "0.005", "0.015", "0.05", "0.25"});
  for (const std::string& name : dataset_names) {
    const AttributedGraph g = *MakeDatasetByName(name, scale);
    std::vector<std::string> cells;
    std::vector<std::pair<std::string, double>> series;
    for (const double eps : {0.001, 0.005, 0.015, 0.05, 0.25}) {
      const auto run = bench::TrainPaneOrDie(g, 128, 10, 0.5, eps);
      cells.push_back(bench::TimeCell(run.stats.total_seconds));
      series.emplace_back(StrFormat("eps=%g", eps),
                          run.stats.total_seconds);
    }
    bench::PrintRow(name, cells);
    eps_series.emplace_back(name, std::move(series));
  }

  RunMemoryBudgetSection(scale);

  if (!json_path.empty()) {
    std::string json = "{\n";
    json += "  \"bench\": \"fig4_scalability\",\n";
    json += "  \"scale\": " + bench::JsonNumber(scale) + ",\n";
    json += "  \"speedup_vs_threads\": " + JsonSeries(speedup_series) + ",\n";
    json += "  \"seconds_vs_k\": " + JsonSeries(k_series) + ",\n";
    json += "  \"seconds_vs_eps\": " + JsonSeries(eps_series) + "\n";
    json += "}";
    bench::WriteJsonFile(json_path, json);
  }
}

}  // namespace
}  // namespace pane

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddString("json", "",
                  "write a JSON telemetry snapshot of the figure series "
                  "(speedups, running times) to this path");
  PANE_CHECK_OK(flags.Parse(argc, argv));
  pane::Run(flags.GetString("json"));
  return 0;
}
