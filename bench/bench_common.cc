#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace pane {
namespace bench {

double BenchScale() { return EnvDoubleOr("PANE_BENCH_SCALE", 1.0); }

void PrintHeader(const std::string& title, const std::string& subtitle) {
  std::printf(
      "\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf(
      "================================================================\n");
}

void PrintRow(const std::string& name, const std::vector<std::string>& cells,
              int name_width, int cell_width) {
  std::printf("%-*s", name_width, name.c_str());
  for (const std::string& cell : cells) {
    std::printf(" %*s", cell_width, cell.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string Cell(double value) {
  if (std::isnan(value)) return "-";
  return StrFormat("%.3f", value);
}

std::string TimeCell(double seconds) {
  if (seconds < 0.0) return "-";
  if (seconds >= 100.0) return StrFormat("%.0fs", seconds);
  if (seconds >= 1.0) return StrFormat("%.2fs", seconds);
  return StrFormat("%.0fms", seconds * 1e3);
}

int64_t PeakRssBytes() {
  std::ifstream status("/proc/self/status");
  if (!status.is_open()) return -1;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    int64_t kb = -1;
    fields >> kb;
    return kb < 0 ? -1 : kb * 1024;
  }
  return -1;
}

std::string MegabyteCell(double bytes) {
  if (bytes < 0.0) return "-";
  return StrFormat("%.1fMB", bytes / (1024.0 * 1024.0));
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return StrFormat("%.17g", value);
}

void WriteJsonFile(const std::string& path, const std::string& json) {
  std::ofstream out(path, std::ios::trunc);
  PANE_CHECK(out.is_open()) << "cannot open --json path " << path;
  out << json << '\n';
  PANE_CHECK(out.good()) << "short write to --json path " << path;
  out.close();
  std::fprintf(stderr, "json telemetry written to %s\n", path.c_str());
}

PaneRun TrainPaneOrDie(const AttributedGraph& graph, int k, int num_threads,
                       double alpha, double epsilon, bool greedy_init,
                       int ccd_iterations, int64_t memory_budget_mb,
                       SlabPolicy slab_policy, SpillMode spill_mode) {
  PaneOptions options;
  options.k = k;
  options.num_threads = num_threads;
  options.alpha = alpha;
  options.epsilon = epsilon;
  options.greedy_init = greedy_init;
  options.ccd_iterations = ccd_iterations;
  options.memory_budget_mb = memory_budget_mb;
  options.slab_policy = slab_policy;
  options.spill_mode = spill_mode;
  PaneRun run;
  auto result = Pane(options).Train(graph, &run.stats);
  PANE_CHECK(result.ok()) << result.status();
  run.embedding = result.MoveValueUnsafe();
  return run;
}

}  // namespace bench
}  // namespace pane
