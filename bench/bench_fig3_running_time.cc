// Figure 3 reproduction: end-to-end embedding time per method per dataset
// (the paper plots log-scale seconds; we print seconds). "-" marks methods
// that refuse a dataset (TADW's densification wall), reproducing the
// "exceeds one week" omissions. Expected shape: PANE (parallel) fastest,
// PANE (single) next, NRP close behind, TADW/BANE/LQANR orders of magnitude
// slower and absent on the large datasets.
//
// Every method is driven through the unified EmbedderRegistry surface; the
// per-method column is just (name, config).
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "src/api/registry.h"
#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/datasets/registry.h"

namespace pane {
namespace {

struct MethodColumn {
  std::string label;
  std::string method;
  EmbedderConfig config;
};

std::vector<MethodColumn> Columns() {
  std::vector<MethodColumn> columns;
  columns.push_back({"NRP", "nrp", EmbedderConfig()});
  columns.push_back(
      {"TADW", "tadw", EmbedderConfig().Set("max_nodes", "4096")});
  columns.push_back({"BANE", "bane", EmbedderConfig()});
  columns.push_back({"LQANR", "lqanr", EmbedderConfig()});
  columns.push_back({"PANE st", "pane-seq", EmbedderConfig()});
  columns.push_back({"PANE par", "pane", EmbedderConfig().Set("threads", "10")});
  return columns;
}

void Run() {
  bench::PrintHeader("Figure 3: running time (seconds)",
                     "paper shape: PANE par < PANE st << baselines; '-' = "
                     "method cannot run the dataset");
  const std::vector<MethodColumn> columns = Columns();
  std::vector<std::string> labels;
  for (const MethodColumn& c : columns) labels.push_back(c.label);
  bench::PrintRow("dataset", labels);

  const double scale = bench::BenchScale();
  for (const DatasetSpec& spec : AllDatasets()) {
    const AttributedGraph g = MakeDataset(spec, scale);
    std::vector<std::string> cells;
    for (const MethodColumn& column : columns) {
      const auto embedder =
          EmbedderRegistry::Create(column.method, column.config);
      PANE_CHECK(embedder.ok()) << embedder.status();
      WallTimer timer;
      const auto embedding = (*embedder)->Train(g);
      cells.push_back(
          bench::TimeCell(embedding.ok() ? timer.ElapsedSeconds() : -1));
    }
    bench::PrintRow(spec.name, cells);
  }
  std::printf(
      "\n(note: this container exposes %u hardware threads, so the parallel "
      "column saturates early; the paper's 10-core server shows up to 9x.)\n",
      std::thread::hardware_concurrency());
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
