// Figure 3 reproduction: end-to-end embedding time per method per dataset
// (the paper plots log-scale seconds; we print seconds). "-" marks methods
// that refuse a dataset (TADW's densification wall), reproducing the
// "exceeds one week" omissions. Expected shape: PANE (parallel) fastest,
// PANE (single) next, NRP close behind, TADW/BANE/LQANR orders of magnitude
// slower and absent on the large datasets.
//
// Every method is driven through the unified EmbedderRegistry surface; the
// per-method column is just (name, config).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include "bench_common.h"
#include "src/api/registry.h"
#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/datasets/registry.h"
#include "src/common/string_util.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"
#include "src/graph/text_parser.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

struct MethodColumn {
  std::string label;
  std::string method;
  EmbedderConfig config;
};

std::vector<MethodColumn> Columns() {
  std::vector<MethodColumn> columns;
  columns.push_back({"NRP", "nrp", EmbedderConfig()});
  columns.push_back(
      {"TADW", "tadw", EmbedderConfig().Set("max_nodes", "4096")});
  columns.push_back({"BANE", "bane", EmbedderConfig()});
  columns.push_back({"LQANR", "lqanr", EmbedderConfig()});
  columns.push_back({"PANE st", "pane-seq", EmbedderConfig()});
  columns.push_back({"PANE par", "pane", EmbedderConfig().Set("threads", "10")});
  return columns;
}

// The pre-ingestion-subsystem text loader (single-threaded `istream >>`),
// kept here verbatim as the baseline the new chunked parser is measured
// against.
AttributedGraph LegacyLoadGraphText(const std::string& dir) {
  std::ifstream meta(dir + "/meta.txt");
  int64_t n = 0, d = 0;
  int directed = 1;
  meta >> n >> d >> directed;
  PANE_CHECK(static_cast<bool>(meta)) << "malformed meta.txt";
  GraphBuilder builder(n, d);
  {
    std::ifstream edges(dir + "/edges.txt");
    int64_t u = 0, v = 0;
    while (edges >> u >> v) builder.AddEdge(u, v);
  }
  {
    std::ifstream attrs(dir + "/attrs.txt");
    int64_t v = 0, r = 0;
    double w = 0.0;
    while (attrs >> v >> r >> w) builder.AddNodeAttribute(v, r, w);
  }
  return builder.Build(directed == 0).ValueOrDie();
}

void RunIngestion() {
  bench::PrintHeader(
      "Ingestion: graph load throughput (1M-edge Barabasi-Albert)",
      "parse = edges.txt -> triplets only; load = full graph (parse + CSR "
      "build); speedup vs the legacy istream parse / load");
  const AttributedGraph g = BarabasiAlbert(115001, 10, /*seed=*/7);
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "pane_ingest_bench";
  PANE_CHECK_OK(SaveGraphText(g, dir.string()));
  const std::string edges_path = (dir / "edges.txt").string();
  const std::string edge_list_path = (dir / "graph.el").string();
  PANE_CHECK_OK(SaveEdgeList(g, edge_list_path));
  const std::string binary_path = (dir / "graph.bin").string();
  PANE_CHECK_OK(SaveGraphBinary(g, binary_path));
  const double edges_mb =
      static_cast<double>(fs::file_size(edges_path)) / 1e6;
  const double text_mb =
      edges_mb +
      static_cast<double>(fs::file_size(dir / "attrs.txt")) / 1e6;
  const double edge_list_mb =
      static_cast<double>(fs::file_size(edge_list_path)) / 1e6;
  const double binary_mb =
      static_cast<double>(fs::file_size(binary_path)) / 1e6;
  std::printf("(graph: %s)\n", g.Summary().c_str());

  bench::PrintRow("path", {"seconds", "MB/s", "speedup"});
  const auto best_of = [](const std::function<void()>& fn) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      WallTimer timer;
      fn();
      best = std::min(best, timer.ElapsedSeconds());
    }
    return best;
  };
  double baseline_seconds = 0.0;
  const auto report = [&baseline_seconds](const std::string& name,
                                          double seconds, double mb) {
    bench::PrintRow(name, {bench::TimeCell(seconds),
                           bench::Cell(seconds > 0 ? mb / seconds : 0.0),
                           seconds > 0 && baseline_seconds > 0
                               ? bench::Cell(baseline_seconds / seconds)
                               : "n/a"});
  };

  // --- Parse only: the text -> triplet step the chunked parser replaced.
  const size_t expected = static_cast<size_t>(g.num_edges());
  baseline_seconds = best_of([&] {
    std::ifstream in(edges_path);
    std::vector<Triplet> triplets;
    int64_t u = 0, v = 0;
    while (in >> u >> v) triplets.push_back(Triplet{u, v, 1.0});
    PANE_CHECK(triplets.size() == expected);
  });
  report("parse istream seq", baseline_seconds, edges_mb);
  for (const int nb : {1, 10}) {
    ThreadPool pool(nb);
    const double seconds = best_of([&] {
      const std::string text = ReadFileToString(edges_path).ValueOrDie();
      TripletParseOptions options;
      options.pool = &pool;
      auto chunks = ParseTripletChunks(text, options);
      size_t total = 0;
      for (const auto& chunk : chunks.ValueOrDie()) total += chunk.size();
      PANE_CHECK(total == expected);
    });
    report(StrFormat("parse chunked nb=%d", nb), seconds, edges_mb);
  }

  // --- Full loads: parse + builder/CSR assembly (or direct CSR adoption).
  const auto check_load = [&g](const AttributedGraph& loaded) {
    PANE_CHECK(loaded.num_edges() == g.num_edges());
  };
  baseline_seconds = best_of(
      [&] { check_load(LegacyLoadGraphText(dir.string())); });
  report("load text legacy", baseline_seconds, text_mb);
  {
    ThreadPool pool(10);
    report("load text nb=10", best_of([&] {
             check_load(LoadGraphText(dir.string(), &pool).ValueOrDie());
           }),
           text_mb);
    EdgeListOptions options;
    options.pool = &pool;
    report("load edge list nb=10", best_of([&] {
             check_load(LoadEdgeList(edge_list_path, options).ValueOrDie());
           }),
           edge_list_mb);
  }
  report("load binary zero-copy", best_of([&] {
           check_load(LoadGraphBinary(binary_path).ValueOrDie());
         }),
         binary_mb);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

void Run() {
  bench::PrintHeader("Figure 3: running time (seconds)",
                     "paper shape: PANE par < PANE st << baselines; '-' = "
                     "method cannot run the dataset");
  const std::vector<MethodColumn> columns = Columns();
  std::vector<std::string> labels;
  for (const MethodColumn& c : columns) labels.push_back(c.label);
  bench::PrintRow("dataset", labels);

  const double scale = bench::BenchScale();
  for (const DatasetSpec& spec : AllDatasets()) {
    const AttributedGraph g = MakeDataset(spec, scale);
    std::vector<std::string> cells;
    for (const MethodColumn& column : columns) {
      const auto embedder =
          EmbedderRegistry::Create(column.method, column.config);
      PANE_CHECK(embedder.ok()) << embedder.status();
      WallTimer timer;
      const auto embedding = (*embedder)->Train(g);
      cells.push_back(
          bench::TimeCell(embedding.ok() ? timer.ElapsedSeconds() : -1));
    }
    bench::PrintRow(spec.name, cells);
  }
  std::printf(
      "\n(note: this container exposes %u hardware threads, so the parallel "
      "column saturates early; the paper's 10-core server shows up to 9x.)\n",
      std::thread::hardware_concurrency());

  RunIngestion();
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
