// Figure 3 reproduction: end-to-end embedding time per method per dataset
// (the paper plots log-scale seconds; we print seconds). "-" marks methods
// that refuse a dataset (TADW's densification wall), reproducing the
// "exceeds one week" omissions. Expected shape: PANE (parallel) fastest,
// PANE (single) next, NRP close behind, TADW/BANE/LQANR orders of magnitude
// slower and absent on the large datasets.
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "src/baselines/bane.h"
#include "src/baselines/lqanr.h"
#include "src/baselines/nrp.h"
#include "src/baselines/tadw.h"
#include "src/common/timer.h"
#include "src/datasets/registry.h"

namespace pane {
namespace {

void Run() {
  bench::PrintHeader("Figure 3: running time (seconds)",
                     "paper shape: PANE par < PANE st << baselines; '-' = "
                     "method cannot run the dataset");
  bench::PrintRow("dataset", {"NRP", "TADW", "BANE", "LQANR", "PANE st",
                              "PANE par"});

  const double scale = bench::BenchScale();
  for (const DatasetSpec& spec : AllDatasets()) {
    const AttributedGraph g = MakeDataset(spec, scale);
    std::vector<std::string> cells;

    {
      WallTimer timer;
      const auto nrp = TrainNrp(g, NrpOptions{});
      cells.push_back(bench::TimeCell(nrp.ok() ? timer.ElapsedSeconds() : -1));
    }
    {
      TadwOptions options;
      options.max_nodes = 4096;
      WallTimer timer;
      const auto tadw = TrainTadw(g, options);
      cells.push_back(
          bench::TimeCell(tadw.ok() ? timer.ElapsedSeconds() : -1));
    }
    {
      WallTimer timer;
      const auto bane = TrainBane(g, BaneOptions{});
      cells.push_back(
          bench::TimeCell(bane.ok() ? timer.ElapsedSeconds() : -1));
    }
    {
      WallTimer timer;
      const auto lqanr = TrainLqanr(g, LqanrOptions{});
      cells.push_back(
          bench::TimeCell(lqanr.ok() ? timer.ElapsedSeconds() : -1));
    }
    {
      const auto run = bench::TrainPaneOrDie(g, 128, 1);
      cells.push_back(bench::TimeCell(run.stats.total_seconds));
    }
    {
      const auto run = bench::TrainPaneOrDie(g, 128, 10);
      cells.push_back(bench::TimeCell(run.stats.total_seconds));
    }
    bench::PrintRow(spec.name, cells);
  }
  std::printf(
      "\n(note: this container exposes %u hardware threads, so the parallel "
      "column saturates early; the paper's 10-core server shows up to 9x.)\n",
      std::thread::hardware_concurrency());
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
