// Ablation (Section 3.1's motivating design choice): deterministic APMI vs
// estimating the affinity probabilities by actually sampling random walks,
// at increasing walk budgets n_r. Prints, per budget, the sampling time and
// the max/mean error against the near-exact series, next to APMI's time and
// truncation error. Expected shape: APMI reaches ~1e-2 error (eps-bounded)
// in a fraction of the time Monte-Carlo needs for even 10x that error —
// sampling error decays only as 1/sqrt(n_r).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "src/common/timer.h"
#include "src/core/apmi.h"
#include "src/datasets/registry.h"
#include "src/graph/random_walk.h"

namespace pane {
namespace {

struct ErrorStats {
  double max_err = 0.0;
  double mean_err = 0.0;
};

ErrorStats Compare(const DenseMatrix& estimate, const DenseMatrix& reference) {
  ErrorStats stats;
  double total = 0.0;
  for (int64_t i = 0; i < estimate.rows(); ++i) {
    for (int64_t j = 0; j < estimate.cols(); ++j) {
      const double err = std::fabs(estimate(i, j) - reference(i, j));
      stats.max_err = std::max(stats.max_err, err);
      total += err;
    }
  }
  stats.mean_err = total / static_cast<double>(estimate.size());
  return stats;
}

void Run() {
  bench::PrintHeader(
      "Ablation: APMI (Algorithm 2) vs Monte-Carlo walk sampling",
      "forward-probability error vs near-exact series; APMI's determinism "
      "is the paper's Section 3.1 design choice");

  const AttributedGraph g = *MakeDatasetByName("cora", bench::BenchScale());
  const double alpha = 0.5;

  // Near-exact reference: APMI truncated at machine precision.
  const CsrMatrix p = g.RandomWalkMatrix();
  const CsrMatrix pt = p.Transposed();
  ApmiInputs inputs;
  inputs.p = &p;
  inputs.p_transposed = &pt;
  inputs.r = &g.attributes();
  inputs.alpha = alpha;
  inputs.t = ComputeIterationCount(1e-12, alpha);
  const auto reference = ApmiProbabilities(inputs).ValueOrDie();

  bench::PrintRow("method", {"time", "max err", "mean err"});

  // APMI at the paper's default eps.
  {
    ApmiInputs fast = inputs;
    fast.t = ComputeIterationCount(0.015, alpha);
    WallTimer timer;
    const auto probs = ApmiProbabilities(fast).ValueOrDie();
    const double seconds = timer.ElapsedSeconds();
    const ErrorStats err = Compare(probs.pf, reference.pf);
    bench::PrintRow("APMI eps=0.015",
                    {bench::TimeCell(seconds),
                     bench::Cell(err.max_err), bench::Cell(err.mean_err)});
  }

  // Monte-Carlo at increasing walk budgets.
  for (const int64_t walks : {int64_t{10}, int64_t{100}, int64_t{1000},
                              int64_t{10000}}) {
    WalkSimulator sim(g, alpha, /*seed=*/5);
    WallTimer timer;
    const DenseMatrix pf = sim.EstimateForwardProbabilities(walks);
    const double seconds = timer.ElapsedSeconds();
    const ErrorStats err = Compare(pf, reference.pf);
    bench::PrintRow("MC n_r=" + std::to_string(walks),
                    {bench::TimeCell(seconds),
                     bench::Cell(err.max_err), bench::Cell(err.mean_err)});
  }

  std::printf(
      "\n(MC error ~ 1/sqrt(n_r): the 1e-2 accuracy APMI hits in "
      "milliseconds costs Monte-Carlo tens of thousands of walks per "
      "node.)\n");
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
