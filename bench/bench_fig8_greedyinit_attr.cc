// Figure 8 reproduction: effectiveness of GreedyInit for attribute
// inference — the same protocol as Figure 7, evaluated on held-out
// attribute entries. Expected shape: PANE above PANE-R at every iteration
// budget; e.g. the paper's Pubmed panel reaches 0.87 AUC in 5 s with
// greedy seeding vs 12 s without.
#include <cstdio>

#include "bench_common.h"
#include "src/datasets/registry.h"
#include "src/tasks/attribute_inference.h"

namespace pane {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 8: GreedyInit vs random init (attribute inference)",
      "rows: t = CCD iterations; cells: total seconds | AUC");
  const double scale = bench::BenchScale();

  for (const std::string name : {"facebook", "pubmed", "flickr"}) {
    const AttributedGraph g = *MakeDatasetByName(name, scale);
    const auto split = SplitAttributes(g, 0.2, /*seed=*/31).ValueOrDie();
    std::printf("\n[%s] %s\n", name.c_str(), g.Summary().c_str());
    bench::PrintRow("  t", {"PANE time", "PANE auc", "PANE-R time",
                            "PANE-R auc"},
                    8, 11);
    for (const int t : {1, 2, 5, 10, 20}) {
      std::vector<std::string> cells;
      for (const bool greedy : {true, false}) {
        const auto run = bench::TrainPaneOrDie(split.train_graph, 128, 10,
                                               0.5, 0.015, greedy, t);
        const AucAp result =
            EvaluateAttributeInference(split, [&](int64_t v, int64_t r) {
              return run.embedding.AttributeScore(v, r);
            });
        cells.push_back(bench::TimeCell(run.stats.total_seconds));
        cells.push_back(bench::Cell(result.auc));
      }
      bench::PrintRow("  " + std::to_string(t), cells, 8, 11);
    }
  }
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
