// Figure 6 reproduction: link-prediction AUC on the five small datasets
// under the same four parameter sweeps as Figure 5 (k / nb / eps / alpha,
// others at defaults). Same expected shapes as Figure 5, at higher AUC
// levels.
#include <cstdio>

#include "bench_common.h"
#include "src/datasets/registry.h"
#include "src/tasks/link_prediction.h"

namespace pane {
namespace {

double LinkAuc(const LinkSplit& split, bool undirected, int k, int nb,
               double eps, double alpha) {
  const auto run =
      bench::TrainPaneOrDie(split.residual_graph, k, nb, alpha, eps);
  const EdgeScorer scorer(run.embedding);
  return EvaluateLinkPrediction(split, [&](int64_t u, int64_t v) {
           return undirected ? scorer.ScoreUndirected(u, v)
                             : scorer.Score(u, v);
         })
      .auc;
}

void Run() {
  const double scale = bench::BenchScale();

  std::vector<std::tuple<std::string, bool, LinkSplit>> splits;
  for (const DatasetSpec& spec : SmallDatasets()) {
    const AttributedGraph g = MakeDataset(spec, scale);
    splits.emplace_back(spec.name, g.undirected(),
                        SplitEdges(g, 0.3, /*seed=*/23).ValueOrDie());
  }

  bench::PrintHeader("Figure 6a: link prediction AUC vs k",
                     "paper shape: AUC grows with k");
  bench::PrintRow("dataset", {"k=16", "k=32", "k=64", "k=128", "k=256"});
  for (auto& [name, undirected, split] : splits) {
    std::vector<std::string> cells;
    for (const int k : {16, 32, 64, 128, 256}) {
      cells.push_back(
          bench::Cell(LinkAuc(split, undirected, k, 10, 0.015, 0.5)));
    }
    bench::PrintRow(name, cells);
  }

  bench::PrintHeader("Figure 6b: link prediction AUC vs nb",
                     "paper shape: slow decay with nb");
  bench::PrintRow("dataset", {"nb=1", "nb=2", "nb=5", "nb=10", "nb=20"});
  for (auto& [name, undirected, split] : splits) {
    std::vector<std::string> cells;
    for (const int nb : {1, 2, 5, 10, 20}) {
      cells.push_back(
          bench::Cell(LinkAuc(split, undirected, 128, nb, 0.015, 0.5)));
    }
    bench::PrintRow(name, cells);
  }

  bench::PrintHeader("Figure 6c: link prediction AUC vs eps",
                     "paper shape: stationary until ~0.05, then declines");
  bench::PrintRow("dataset", {"0.001", "0.005", "0.015", "0.05", "0.25"});
  for (auto& [name, undirected, split] : splits) {
    std::vector<std::string> cells;
    for (const double eps : {0.001, 0.005, 0.015, 0.05, 0.25}) {
      cells.push_back(
          bench::Cell(LinkAuc(split, undirected, 128, 10, eps, 0.5)));
    }
    bench::PrintRow(name, cells);
  }

  bench::PrintHeader("Figure 6d: link prediction AUC vs alpha",
                     "paper shape: peak near alpha = 0.5-0.7");
  bench::PrintRow("dataset", {"0.1", "0.3", "0.5", "0.7", "0.9"});
  for (auto& [name, undirected, split] : splits) {
    std::vector<std::string> cells;
    for (const double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      cells.push_back(
          bench::Cell(LinkAuc(split, undirected, 128, 10, 0.015, alpha)));
    }
    bench::PrintRow(name, cells);
  }
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
