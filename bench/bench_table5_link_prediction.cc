// Table 5 reproduction: link-prediction AUC / AP on all eight datasets.
// Methods: NRP (topology-only), TADW, BANE, LQANR (factorization ANE
// baselines), PANE single-thread and parallel — all driven through the
// unified EmbedderRegistry + RunLinkPrediction surface, which tries each
// artifact's candidate scoring conventions (inner product / cosine, Hamming
// for BANE, Equation 22 for PANE) and keeps the best, mirroring the paper's
// protocol. TADW refuses graphs beyond its densification guard — the "-"
// cells that reproduce the paper's did-not-finish entries.
// Expected shape: PANE on top overall; NRP competitive (it wins Google+ in
// the paper); TADW/BANE/LQANR trailing and absent on the large datasets.
#include <cstdio>

#include "bench_common.h"
#include "src/api/evaluate.h"
#include "src/api/registry.h"
#include "src/common/logging.h"
#include "src/datasets/registry.h"

namespace pane {
namespace {

struct MethodColumn {
  std::string label;
  std::string method;
  EmbedderConfig config;
};

std::vector<MethodColumn> Columns() {
  std::vector<MethodColumn> columns;
  columns.push_back({"NRP", "nrp", EmbedderConfig()});
  columns.push_back(
      {"TADW", "tadw", EmbedderConfig().Set("max_nodes", "4096")});
  columns.push_back({"BANE", "bane", EmbedderConfig()});
  columns.push_back({"LQANR", "lqanr", EmbedderConfig()});
  columns.push_back({"PANEst", "pane-seq", EmbedderConfig()});
  columns.push_back({"PANEpar", "pane", EmbedderConfig().Set("threads", "10")});
  return columns;
}

void Run() {
  bench::PrintHeader(
      "Table 5: link prediction (AUC / AP)",
      "paper shape: PANE best (NRP close; wins Google+); TADW & co die on "
      "large data");
  const std::vector<MethodColumn> columns = Columns();
  std::vector<std::string> labels;
  for (const MethodColumn& c : columns) {
    labels.push_back(c.label + ".a");
    labels.push_back(c.label + ".p");
  }
  bench::PrintRow("dataset", labels, 12, 8);

  const double scale = bench::BenchScale();
  for (const DatasetSpec& spec : AllDatasets()) {
    const AttributedGraph g = MakeDataset(spec, scale);
    std::vector<std::string> cells;
    for (const MethodColumn& column : columns) {
      const auto embedder =
          EmbedderRegistry::Create(column.method, column.config);
      PANE_CHECK(embedder.ok()) << embedder.status();
      const auto r = RunLinkPrediction(**embedder, g, 0.3, /*seed=*/13);
      if (r.ok()) {
        cells.push_back(bench::Cell(r->auc));
        cells.push_back(bench::Cell(r->ap));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }
    bench::PrintRow(spec.name, cells, 12, 8);
  }
  std::printf(
      "\n(GATNE/ARGA/PRRE/STNE/CAN/DGI: neural methods, not reproduced — "
      "see DESIGN.md; the paper shows them below the factorization "
      "baselines or failing on large datasets.)\n");
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
