// Table 5 reproduction: link-prediction AUC / AP on all eight datasets.
// Methods: NRP (topology-only), TADW, BANE, LQANR (factorization ANE
// baselines), PANE single-thread and parallel. Each single-matrix baseline
// is scored under both the inner-product and cosine conventions (Hamming
// for BANE) and reports its best, mirroring the paper's protocol. TADW
// refuses graphs beyond its densification guard — the "-" cells that
// reproduce the paper's did-not-finish entries.
// Expected shape: PANE on top overall; NRP competitive (it wins Google+ in
// the paper); TADW/BANE/LQANR trailing and absent on the large datasets.
#include <cmath>
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "src/baselines/bane.h"
#include "src/baselines/lqanr.h"
#include "src/baselines/nrp.h"
#include "src/baselines/tadw.h"
#include "src/datasets/registry.h"
#include "src/tasks/link_prediction.h"

namespace pane {
namespace {

using Scorer = std::function<double(int64_t, int64_t)>;

AucAp BestOf(const LinkSplit& split, const std::vector<Scorer>& scorers) {
  AucAp best{0.0, 0.0};
  for (const Scorer& scorer : scorers) {
    const AucAp result = EvaluateLinkPrediction(split, scorer);
    if (result.auc > best.auc) best = result;
  }
  return best;
}

Scorer Symmetrize(const AttributedGraph& g, Scorer directed) {
  if (!g.undirected()) return directed;
  return [directed](int64_t u, int64_t v) {
    return directed(u, v) + directed(v, u);
  };
}

void Run() {
  bench::PrintHeader(
      "Table 5: link prediction (AUC / AP)",
      "paper shape: PANE best (NRP close; wins Google+); TADW & co die on "
      "large data");
  bench::PrintRow("dataset",
                  {"NRP.a", "NRP.p", "TADW.a", "TADW.p", "BANE.a", "BANE.p",
                   "LQANR.a", "LQANR.p", "PANEst.a", "PANEst.p", "PANEpar.a",
                   "PANEpar.p"},
                  12, 8);

  const double scale = bench::BenchScale();
  for (const DatasetSpec& spec : AllDatasets()) {
    const AttributedGraph g = MakeDataset(spec, scale);
    const auto split = SplitEdges(g, 0.3, /*seed=*/13).ValueOrDie();
    const AttributedGraph& train = split.residual_graph;
    std::vector<std::string> cells;

    {  // NRP: Xf[u] . Xb[v].
      NrpOptions options;
      const auto nrp = TrainNrp(train, options);
      if (nrp.ok()) {
        Scorer s = Symmetrize(
            g, [&nrp](int64_t u, int64_t v) { return nrp->Score(u, v); });
        const AucAp r = EvaluateLinkPrediction(split, s);
        cells.push_back(bench::Cell(r.auc));
        cells.push_back(bench::Cell(r.ap));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }

    {  // TADW: best of inner product / cosine; guarded against large n.
      TadwOptions options;
      options.max_nodes = 4096;  // densification wall
      const auto tadw = TrainTadw(train, options);
      if (tadw.ok()) {
        const DenseMatrix& f = tadw->features;
        const AucAp r = BestOf(
            split,
            {Symmetrize(g, [&f](int64_t u, int64_t v) {
               return InnerProductScore(f, u, v);
             }),
             [&f](int64_t u, int64_t v) { return CosineScore(f, u, v); }});
        cells.push_back(bench::Cell(r.auc));
        cells.push_back(bench::Cell(r.ap));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }

    {  // BANE: Hamming over binary codes.
      const auto bane = TrainBane(train, BaneOptions{});
      if (bane.ok()) {
        const DenseMatrix& codes = bane->codes;
        const AucAp r = EvaluateLinkPrediction(
            split, [&codes](int64_t u, int64_t v) {
              return HammingScore(codes, u, v);
            });
        cells.push_back(bench::Cell(r.auc));
        cells.push_back(bench::Cell(r.ap));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }

    {  // LQANR: best of inner product / cosine on quantized features.
      const auto lqanr = TrainLqanr(train, LqanrOptions{});
      if (lqanr.ok()) {
        const DenseMatrix& f = lqanr->features;
        const AucAp r = BestOf(
            split,
            {Symmetrize(g, [&f](int64_t u, int64_t v) {
               return InnerProductScore(f, u, v);
             }),
             [&f](int64_t u, int64_t v) { return CosineScore(f, u, v); }});
        cells.push_back(bench::Cell(r.auc));
        cells.push_back(bench::Cell(r.ap));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }

    for (const int threads : {1, 10}) {
      const auto run = bench::TrainPaneOrDie(train, 128, threads);
      const EdgeScorer scorer(run.embedding);
      Scorer s = Symmetrize(g, [&scorer](int64_t u, int64_t v) {
        return scorer.Score(u, v);
      });
      const AucAp r = EvaluateLinkPrediction(split, s);
      cells.push_back(bench::Cell(r.auc));
      cells.push_back(bench::Cell(r.ap));
    }

    bench::PrintRow(spec.name, cells, 12, 8);
  }
  std::printf(
      "\n(GATNE/ARGA/PRRE/STNE/CAN/DGI: neural methods, not reproduced — "
      "see DESIGN.md; the paper shows them below the factorization "
      "baselines or failing on large datasets.)\n");
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
