// Figure 2 reproduction: node-classification micro-F1 as the training
// fraction sweeps 0.1 .. 0.9, per dataset. Methods: NRP, BANE, LQANR, TADW
// (small datasets only) and PANE (single thread + parallel). PANE / NRP use
// normalized Xf || Xb features; the others their single embedding matrix.
// Expected shape: PANE top curve on every panel, NRP strongest baseline on
// the large graphs, all curves rising with the training fraction.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "src/baselines/bane.h"
#include "src/baselines/lqanr.h"
#include "src/baselines/nrp.h"
#include "src/baselines/tadw.h"
#include "src/datasets/registry.h"
#include "src/tasks/node_classification.h"

namespace pane {
namespace {

constexpr double kFractions[] = {0.1, 0.3, 0.5, 0.7, 0.9};

double MicroF1(const DenseMatrix& features, const AttributedGraph& g,
               double fraction) {
  NodeClassificationOptions options;
  options.train_fraction = fraction;
  options.repeats = 3;
  const auto f1 = EvaluateNodeClassification(features, g, options);
  return f1.ok() ? f1->micro : NAN;
}

void SweepRow(const std::string& name, const DenseMatrix& features,
              const AttributedGraph& g) {
  std::vector<std::string> cells;
  for (const double fraction : kFractions) {
    cells.push_back(bench::Cell(MicroF1(features, g, fraction)));
  }
  bench::PrintRow("  " + name, cells);
}

void Run() {
  bench::PrintHeader(
      "Figure 2: node classification, micro-F1 vs train fraction",
      "columns: train fraction 0.1 0.3 0.5 0.7 0.9; paper shape: PANE on "
      "top in every panel");

  const double scale = bench::BenchScale();
  for (const DatasetSpec& spec : AllDatasets()) {
    const AttributedGraph g = MakeDataset(spec, scale);
    std::printf("\n[%s] %s\n", spec.name.c_str(), g.Summary().c_str());
    bench::PrintRow("  method", {"10%", "30%", "50%", "70%", "90%"});

    {
      NrpOptions options;
      const auto nrp = TrainNrp(g, options);
      if (nrp.ok()) {
        SweepRow("NRP", ConcatNormalizedEmbeddings(nrp->xf, nrp->xb), g);
      }
    }
    {
      TadwOptions options;
      options.max_nodes = 4096;
      const auto tadw = TrainTadw(g, options);
      if (tadw.ok()) {
        SweepRow("TADW", RowNormalizedCopy(tadw->features), g);
      } else {
        bench::PrintRow("  TADW", {"-", "-", "-", "-", "-"});
      }
    }
    {
      const auto bane = TrainBane(g, BaneOptions{});
      if (bane.ok()) SweepRow("BANE", bane->codes, g);
    }
    {
      const auto lqanr = TrainLqanr(g, LqanrOptions{});
      if (lqanr.ok()) SweepRow("LQANR", RowNormalizedCopy(lqanr->features), g);
    }
    {
      const auto run = bench::TrainPaneOrDie(g, 128, 1);
      SweepRow("PANE (single)",
               ConcatNormalizedEmbeddings(run.embedding.xf, run.embedding.xb),
               g);
    }
    {
      const auto run = bench::TrainPaneOrDie(g, 128, 10);
      SweepRow("PANE (parallel)",
               ConcatNormalizedEmbeddings(run.embedding.xf, run.embedding.xb),
               g);
    }
  }
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
