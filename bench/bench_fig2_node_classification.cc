// Figure 2 reproduction: node-classification micro-F1 as the training
// fraction sweeps 0.1 .. 0.9, per dataset. Methods: NRP, BANE, LQANR, TADW
// (small datasets only) and PANE (single thread + parallel), all constructed
// through the unified EmbedderRegistry; classifier features come from the
// shared ClassifierFeatures adapter (normalized Xf || Xb for the factor
// methods, raw codes for BANE, row-normalized features otherwise).
// Expected shape: PANE top curve on every panel, NRP strongest baseline on
// the large graphs, all curves rising with the training fraction.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "src/api/adapters.h"
#include "src/api/registry.h"
#include "src/common/logging.h"
#include "src/datasets/registry.h"
#include "src/tasks/node_classification.h"

namespace pane {
namespace {

constexpr double kFractions[] = {0.1, 0.3, 0.5, 0.7, 0.9};

struct MethodRow {
  std::string label;
  std::string method;
  EmbedderConfig config;
};

std::vector<MethodRow> Rows() {
  std::vector<MethodRow> rows;
  rows.push_back({"NRP", "nrp", EmbedderConfig()});
  rows.push_back({"TADW", "tadw", EmbedderConfig().Set("max_nodes", "4096")});
  rows.push_back({"BANE", "bane", EmbedderConfig()});
  rows.push_back({"LQANR", "lqanr", EmbedderConfig()});
  rows.push_back({"PANE (single)", "pane-seq", EmbedderConfig()});
  rows.push_back(
      {"PANE (parallel)", "pane", EmbedderConfig().Set("threads", "10")});
  return rows;
}

double MicroF1(const DenseMatrix& features, const AttributedGraph& g,
               double fraction) {
  NodeClassificationOptions options;
  options.train_fraction = fraction;
  options.repeats = 3;
  const auto f1 = EvaluateNodeClassification(features, g, options);
  return f1.ok() ? f1->micro : NAN;
}

void Run() {
  bench::PrintHeader(
      "Figure 2: node classification, micro-F1 vs train fraction",
      "columns: train fraction 0.1 0.3 0.5 0.7 0.9; paper shape: PANE on "
      "top in every panel");

  const std::vector<MethodRow> rows = Rows();
  const double scale = bench::BenchScale();
  for (const DatasetSpec& spec : AllDatasets()) {
    const AttributedGraph g = MakeDataset(spec, scale);
    std::printf("\n[%s] %s\n", spec.name.c_str(), g.Summary().c_str());
    bench::PrintRow("  method", {"10%", "30%", "50%", "70%", "90%"});

    for (const MethodRow& row : rows) {
      const auto embedder = EmbedderRegistry::Create(row.method, row.config);
      PANE_CHECK(embedder.ok()) << embedder.status();
      const auto embedding = (*embedder)->Train(g);
      if (!embedding.ok()) {
        bench::PrintRow("  " + row.label, {"-", "-", "-", "-", "-"});
        continue;
      }
      const DenseMatrix features = ClassifierFeatures(*embedding);
      std::vector<std::string> cells;
      for (const double fraction : kFractions) {
        cells.push_back(bench::Cell(MicroF1(features, g, fraction)));
      }
      bench::PrintRow("  " + row.label, cells);
    }
  }
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
