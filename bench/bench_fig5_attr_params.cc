// Figure 5 reproduction: attribute-inference AUC on the five small datasets
// while sweeping each PANE parameter with the others at their defaults
// (k = 128, nb = 10, eps = 0.015, alpha = 0.5):
//   5a. k in {16, 32, 64, 128, 256}     — AUC grows with k
//   5b. nb in {1, 2, 5, 10, 20}         — AUC decays slightly with nb
//   5c. eps in {0.001 ... 0.25}         — stable until ~0.05, then drops
//   5d. alpha in {0.1 ... 0.9}          — peak near alpha = 0.5
#include <cstdio>

#include "bench_common.h"
#include "src/datasets/registry.h"
#include "src/tasks/attribute_inference.h"

namespace pane {
namespace {

double AttrAuc(const AttributeSplit& split, int k, int nb, double eps,
               double alpha) {
  const auto run =
      bench::TrainPaneOrDie(split.train_graph, k, nb, alpha, eps);
  return EvaluateAttributeInference(split, [&](int64_t v, int64_t r) {
           return run.embedding.AttributeScore(v, r);
         })
      .auc;
}

void Run() {
  const double scale = bench::BenchScale();

  struct Panel {
    const char* title;
    const char* header[5];
  };

  // Pre-split each dataset once; reuse across panels.
  std::vector<std::pair<std::string, AttributeSplit>> splits;
  for (const DatasetSpec& spec : SmallDatasets()) {
    splits.emplace_back(
        spec.name,
        SplitAttributes(MakeDataset(spec, scale), 0.2, /*seed=*/21)
            .ValueOrDie());
  }

  bench::PrintHeader("Figure 5a: attribute inference AUC vs k",
                     "paper shape: AUC grows notably from k=16 to 256");
  bench::PrintRow("dataset", {"k=16", "k=32", "k=64", "k=128", "k=256"});
  for (auto& [name, split] : splits) {
    std::vector<std::string> cells;
    for (const int k : {16, 32, 64, 128, 256}) {
      cells.push_back(bench::Cell(AttrAuc(split, k, 10, 0.015, 0.5)));
    }
    bench::PrintRow(name, cells);
  }

  bench::PrintHeader("Figure 5b: attribute inference AUC vs nb",
                     "paper shape: slight decay as the split-merge SVD "
                     "error grows with nb");
  bench::PrintRow("dataset", {"nb=1", "nb=2", "nb=5", "nb=10", "nb=20"});
  for (auto& [name, split] : splits) {
    std::vector<std::string> cells;
    for (const int nb : {1, 2, 5, 10, 20}) {
      cells.push_back(bench::Cell(AttrAuc(split, 128, nb, 0.015, 0.5)));
    }
    bench::PrintRow(name, cells);
  }

  bench::PrintHeader("Figure 5c: attribute inference AUC vs eps",
                     "paper shape: stationary until eps ~ 0.05, then drops");
  bench::PrintRow("dataset", {"0.001", "0.005", "0.015", "0.05", "0.25"});
  for (auto& [name, split] : splits) {
    std::vector<std::string> cells;
    for (const double eps : {0.001, 0.005, 0.015, 0.05, 0.25}) {
      cells.push_back(bench::Cell(AttrAuc(split, 128, 10, eps, 0.5)));
    }
    bench::PrintRow(name, cells);
  }

  bench::PrintHeader("Figure 5d: attribute inference AUC vs alpha",
                     "paper shape: rises then falls; alpha ~ 0.5 favourable");
  bench::PrintRow("dataset", {"0.1", "0.3", "0.5", "0.7", "0.9"});
  for (auto& [name, split] : splits) {
    std::vector<std::string> cells;
    for (const double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      cells.push_back(bench::Cell(AttrAuc(split, 128, 10, 0.015, alpha)));
    }
    bench::PrintRow(name, cells);
  }
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
