// Figure 7 reproduction: effectiveness of GreedyInit for link prediction.
// For t (CCD iterations) in {1, 2, 5, 10, 20}, trains PANE (greedy seeding)
// and PANE-R (random seeding) on Facebook-, Pubmed- and Flickr-like data
// and prints running time vs AUC. Expected shape: at equal time budgets
// PANE sits strictly above PANE-R; PANE-R needs many more iterations to
// approach the same AUC (Section 5.7).
#include <cstdio>

#include "bench_common.h"
#include "src/datasets/registry.h"
#include "src/tasks/link_prediction.h"

namespace pane {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 7: GreedyInit vs random init (link prediction)",
      "rows: t = CCD iterations; cells: total seconds | AUC");
  const double scale = bench::BenchScale();

  for (const std::string name : {"facebook", "pubmed", "flickr"}) {
    const AttributedGraph g = *MakeDatasetByName(name, scale);
    const auto split = SplitEdges(g, 0.3, /*seed=*/29).ValueOrDie();
    std::printf("\n[%s] %s\n", name.c_str(), g.Summary().c_str());
    bench::PrintRow("  t", {"PANE time", "PANE auc", "PANE-R time",
                            "PANE-R auc"},
                    8, 11);
    for (const int t : {1, 2, 5, 10, 20}) {
      std::vector<std::string> cells;
      for (const bool greedy : {true, false}) {
        const auto run = bench::TrainPaneOrDie(split.residual_graph, 128, 10,
                                               0.5, 0.015, greedy, t);
        const EdgeScorer scorer(run.embedding);
        const AucAp result =
            EvaluateLinkPrediction(split, [&](int64_t u, int64_t v) {
              return g.undirected() ? scorer.ScoreUndirected(u, v)
                                    : scorer.Score(u, v);
            });
        cells.push_back(bench::TimeCell(run.stats.total_seconds));
        cells.push_back(bench::Cell(result.auc));
      }
      bench::PrintRow("  " + std::to_string(t), cells, 8, 11);
    }
  }
}

}  // namespace
}  // namespace pane

int main() {
  pane::Run();
  return 0;
}
