// Serving-path benchmark: legacy per-query top-k vs the batched
// QueryEngine (exact and IVF-pruned) on a clustered synthetic embedding.
// Reports throughput (QPS), per-query latency (p50/p99), and measured
// recall@k for the pruned mode's nprobe sweep — the acceptance numbers of
// the serving subsystem: >= 5x the legacy single-thread per-query path on
// a >= 10k-node graph at measured recall@10 >= 0.9 (the pruned rows),
// with the exact engine bitwise-identical to the legacy results and
// faster per thread on top (the batched kernel's cross-query SIMD; exact
// arithmetic caps it well below the pruned speedups, since every
// candidate must still be scored with Dot's exact rounding).
//
// Sizing: PANE_BENCH_SERVE_N / PANE_BENCH_SERVE_D / PANE_BENCH_SERVE_H
// override the node / attribute counts and the per-side factor width
// (defaults 100000 / 20000 / 64 = the paper-default k=128, n and d times
// PANE_BENCH_SCALE).
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "src/api/node_embedding.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/common/topk.h"
#include "src/core/embedding.h"
#include "src/graph/generators.h"
#include "src/obs/metrics.h"
#include "src/parallel/thread_pool.h"
#include "src/serve/embedding_store.h"
#include "src/serve/frame_protocol.h"
#include "src/serve/ivf_index.h"
#include "src/serve/query_engine.h"
#include "src/serve/router.h"
#include "src/serve/server.h"

namespace pane {
namespace bench {
namespace {

constexpr int64_t kTopK = 10;

// ---- The pre-serving-subsystem per-query path, reproduced verbatim ------

Ranking LegacySelectTopK(Ranking candidates, int64_t k) {
  const int64_t kk =
      std::min<int64_t>(k, static_cast<int64_t>(candidates.size()));
  std::partial_sort(
      candidates.begin(), candidates.begin() + kk, candidates.end(),
      [](const auto& a, const auto& b) { return a.second > b.second; });
  candidates.resize(static_cast<size_t>(kk));
  return candidates;
}

Ranking LegacyTopKAttributes(const PaneEmbedding& embedding, int64_t v,
                             int64_t k, const AttributedGraph* exclude) {
  Ranking candidates;
  candidates.reserve(static_cast<size_t>(embedding.num_attributes()));
  for (int64_t r = 0; r < embedding.num_attributes(); ++r) {
    if (exclude != nullptr && exclude->attributes().At(v, r) != 0.0) continue;
    candidates.emplace_back(r, embedding.AttributeScore(v, r));
  }
  return LegacySelectTopK(std::move(candidates), k);
}

Ranking LegacyTopKTargets(const PaneEmbedding& embedding,
                          const EdgeScorer& scorer, int64_t u, int64_t k,
                          const AttributedGraph* exclude) {
  Ranking candidates;
  candidates.reserve(static_cast<size_t>(embedding.num_nodes()));
  for (int64_t v = 0; v < embedding.num_nodes(); ++v) {
    if (v == u) continue;
    if (exclude != nullptr && exclude->adjacency().At(u, v) != 0.0) continue;
    candidates.emplace_back(v, scorer.Score(u, v));
  }
  return LegacySelectTopK(std::move(candidates), k);
}

// ---- Clustered synthetic embedding (IVF recall needs structure) ---------

PaneEmbedding MakeClusteredEmbedding(const AttributedGraph& graph, int64_t h,
                                     int32_t communities, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix node_centroids(communities, h);
  DenseMatrix attr_centroids(communities, h);
  node_centroids.FillGaussian(&rng);
  attr_centroids.FillGaussian(&rng);
  PaneEmbedding e;
  e.xf.Resize(graph.num_nodes(), h);
  e.xb.Resize(graph.num_nodes(), h);
  e.y.Resize(graph.num_attributes(), h);
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    const int32_t c = graph.labels()[static_cast<size_t>(v)][0];
    for (int64_t t = 0; t < h; ++t) {
      e.xf(v, t) = node_centroids(c, t) + 0.3 * rng.Gaussian();
      e.xb(v, t) = node_centroids(c, t) + 0.3 * rng.Gaussian();
    }
  }
  // The SBM partitions attributes into per-community blocks.
  const int64_t block = std::max<int64_t>(
      1, graph.num_attributes() / communities);
  for (int64_t r = 0; r < graph.num_attributes(); ++r) {
    const int64_t c = std::min<int64_t>(r / block, communities - 1);
    for (int64_t t = 0; t < h; ++t) {
      e.y(r, t) = attr_centroids(c, t) + 0.3 * rng.Gaussian();
    }
  }
  return e;
}

std::vector<serve::TopKQuery> MakeQueries(int64_t n, int64_t count,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<serve::TopKQuery> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    queries.push_back(
        {static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n))),
         kTopK});
  }
  return queries;
}

std::string QpsCell(double qps) {
  char buf[32];
  if (qps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", qps / 1e6);
  } else if (qps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", qps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", qps);
  }
  return buf;
}

std::string MicrosCell(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  return buf;
}

struct Latency {
  double p50 = 0.0, p99 = 0.0;
};

/// Everything the --json snapshot reports, collected as the sections run.
struct ServeTelemetry {
  int64_t n = 0, d = 0, h = 0;
  double legacy_attr_qps = 0.0, exact_attr_qps = 0.0;
  double legacy_link_qps = 0.0, exact_link_qps = 0.0;
  double attr_p50_us = 0.0, attr_p99_us = 0.0;
  double link_p50_us = 0.0, link_p99_us = 0.0;
  struct PrunedRow {
    int64_t nprobe = 0;
    double qps = 0.0;
    double recall = 0.0;
  };
  std::vector<PrunedRow> pruned;
  double shard2_speedup = 0.0, shard4_speedup = 0.0;
  double qps_metrics_off = 0.0, qps_metrics_on = 0.0;
  double metrics_overhead_pct = 0.0;
  int64_t stage_scan_count = 0, stage_fanout_count = 0;
  std::string metrics_dump;  ///< the local-shards=2 registry exposition
};

// ---- TCP client for the concurrent-connections section ------------------

int ConnectLoopback(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  PANE_CHECK(fd >= 0);
  const int one = 1;
  // Round-trip latency is the measurement; Nagle would serialize it with
  // the delayed-ack clock instead of the server.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  PANE_CHECK(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
             0)
      << std::strerror(errno);
  return fd;
}

/// One client connection issuing `count` random attr round-trips (write a
/// request, block for its full response) and recording each round-trip
/// time.
std::vector<double> RunClient(int port, bool framed, int64_t count,
                              int64_t num_nodes, uint64_t seed) {
  const int fd = ConnectLoopback(port);
  Rng rng(seed);
  serve::FrameCodec codec;
  std::vector<double> times;
  times.reserve(static_cast<size_t>(count));
  std::string wire, response;
  char buf[4096];
  for (int64_t i = 0; i < count; ++i) {
    const int64_t node =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
    const std::string payload =
        "attr " + std::to_string(node) + " " + std::to_string(kTopK);
    wire.clear();
    if (framed) {
      serve::AppendFrame(payload, &wire);
    } else {
      wire = payload + "\n";
    }
    WallTimer t;
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = write(fd, wire.data() + sent, wire.size() - sent);
      PANE_CHECK(n > 0) << std::strerror(errno);
      sent += static_cast<size_t>(n);
    }
    response.clear();
    bool complete = false;
    while (!complete) {
      const ssize_t got = read(fd, buf, sizeof(buf));
      PANE_CHECK(got > 0) << "server closed mid-benchmark";
      response.append(buf, static_cast<size_t>(got));
      if (framed) {
        size_t pos = 0;
        std::string_view p;
        std::string error;
        complete = codec.Decode(response, &pos, &p, &error) ==
                   serve::ProtocolCodec::Decoded::kMessage;
      } else {
        complete = response.back() == '\n';
      }
    }
    times.push_back(t.ElapsedSeconds());
  }
  close(fd);
  return times;
}

Latency Percentiles(std::vector<double> seconds) {
  std::sort(seconds.begin(), seconds.end());
  Latency l;
  if (seconds.empty()) return l;
  l.p50 = seconds[seconds.size() / 2];
  l.p99 = seconds[std::min(seconds.size() - 1, seconds.size() * 99 / 100)];
  return l;
}

}  // namespace

void Run(const std::string& json_path) {
  ServeTelemetry telemetry;
  const double scale = BenchScale();
  const int64_t n = static_cast<int64_t>(
      EnvDoubleOr("PANE_BENCH_SERVE_N", 100000.0 * scale));
  const int64_t d = static_cast<int64_t>(
      EnvDoubleOr("PANE_BENCH_SERVE_D", 20000.0 * scale));
  const int64_t h = static_cast<int64_t>(EnvDoubleOr("PANE_BENCH_SERVE_H", 64.0));
  const int32_t communities = 32;
  const int num_threads = 4;
  telemetry.n = n;
  telemetry.d = d;
  telemetry.h = h;

  SbmParams params;
  params.num_nodes = n;
  params.num_edges = 8 * n;
  params.num_attributes = d;
  params.num_attr_entries = 8 * n;
  params.num_communities = communities;
  params.seed = 7;
  const AttributedGraph graph = GenerateAttributedSbm(params);
  const PaneEmbedding embedding =
      MakeClusteredEmbedding(graph, h, communities, 11);
  const EdgeScorer scorer(embedding);

  PrintHeader("Serving throughput",
              "legacy per-query vs batched QueryEngine, n=" +
                  std::to_string(n) + " d=" + std::to_string(d) +
                  " h=" + std::to_string(h) + " k=" + std::to_string(kTopK));

  // Engines share the scorer's Z so exact link scores match it bitwise.
  serve::QueryEngineOptions serial_options;
  auto serial_engine = serve::QueryEngine::Create(
      embedding.xf.View(), embedding.xb.View(), embedding.y.View(),
      scorer.z(), serial_options);
  PANE_CHECK(serial_engine.ok()) << serial_engine.status();
  ThreadPool pool(num_threads);
  serve::QueryEngineOptions pooled_options;
  pooled_options.pool = &pool;
  auto pooled_engine = serve::QueryEngine::Create(
      embedding.xf.View(), embedding.xb.View(), embedding.y.View(),
      scorer.z(), pooled_options);
  PANE_CHECK(pooled_engine.ok()) << pooled_engine.status();

  const int64_t legacy_queries = std::max<int64_t>(64, 40000000 / n);
  const int64_t engine_queries = 4 * legacy_queries;
  double legacy_attr_qps = 0.0, engine_attr_qps = 0.0;
  double legacy_link_qps = 0.0, engine_link_qps = 0.0;

  const auto bench_mode = [&](const char* label,
                              const AttributedGraph* exclude) {
    const auto lq = MakeQueries(n, legacy_queries, 21);
    const auto eq = MakeQueries(n, engine_queries, 22);
    WallTimer timer;
    for (const auto& q : lq) {
      LegacyTopKAttributes(embedding, q.node, q.k, exclude);
    }
    const double legacy_attr = legacy_queries / timer.ElapsedSeconds();
    timer.Restart();
    for (const auto& q : lq) {
      LegacyTopKTargets(embedding, scorer, q.node, q.k, exclude);
    }
    const double legacy_link = legacy_queries / timer.ElapsedSeconds();
    timer.Restart();
    serial_engine->TopKAttributes(eq, exclude);
    const double serial_attr = engine_queries / timer.ElapsedSeconds();
    timer.Restart();
    serial_engine->TopKTargets(eq, exclude);
    const double serial_link = engine_queries / timer.ElapsedSeconds();
    timer.Restart();
    pooled_engine->TopKAttributes(eq, exclude);
    const double pooled_attr = engine_queries / timer.ElapsedSeconds();
    timer.Restart();
    pooled_engine->TopKTargets(eq, exclude);
    const double pooled_link = engine_queries / timer.ElapsedSeconds();

    char speedup_attr[32], speedup_link[32];
    std::snprintf(speedup_attr, sizeof(speedup_attr), "%.1fx",
                  serial_attr / legacy_attr);
    std::snprintf(speedup_link, sizeof(speedup_link), "%.1fx",
                  serial_link / legacy_link);
    PrintRow(std::string(label) + " attr",
             {QpsCell(legacy_attr), QpsCell(serial_attr), speedup_attr,
              QpsCell(pooled_attr)});
    PrintRow(std::string(label) + " link",
             {QpsCell(legacy_link), QpsCell(serial_link), speedup_link,
              QpsCell(pooled_link)});
    if (exclude == nullptr) {
      legacy_attr_qps = legacy_attr;
      engine_attr_qps = serial_attr;
      legacy_link_qps = legacy_link;
      engine_link_qps = serial_link;
    }
  };

  PrintRow("mode / query", {"legacy", "exact-1t", "speedup",
                            "exact-" + std::to_string(num_threads) + "t"});
  bench_mode("score-all", nullptr);
  bench_mode("recommend", &graph);
  telemetry.legacy_attr_qps = legacy_attr_qps;
  telemetry.exact_attr_qps = engine_attr_qps;
  telemetry.legacy_link_qps = legacy_link_qps;
  telemetry.exact_link_qps = engine_link_qps;
  std::printf(
      "  single-thread exact vs legacy: attr %.1fx, link %.1fx (bitwise "
      "identical scores; see the pruned section for the >= 5x serving "
      "acceptance)\n",
      engine_attr_qps / legacy_attr_qps, engine_link_qps / legacy_link_qps);

  // ---- Per-query latency (batch of one, serial engine) ------------------
  PrintHeader("Serving latency", "batch=1, single thread, p50 / p99");
  const auto latency_queries = MakeQueries(n, 256, 31);
  std::vector<double> attr_times, link_times;
  for (const auto& q : latency_queries) {
    WallTimer t;
    serial_engine->TopKAttributes({q}, nullptr);
    attr_times.push_back(t.ElapsedSeconds());
  }
  for (const auto& q : latency_queries) {
    WallTimer t;
    serial_engine->TopKTargets({q}, nullptr);
    link_times.push_back(t.ElapsedSeconds());
  }
  const Latency attr_lat = Percentiles(attr_times);
  const Latency link_lat = Percentiles(link_times);
  telemetry.attr_p50_us = attr_lat.p50 * 1e6;
  telemetry.attr_p99_us = attr_lat.p99 * 1e6;
  telemetry.link_p50_us = link_lat.p50 * 1e6;
  telemetry.link_p99_us = link_lat.p99 * 1e6;
  PrintRow("query", {"p50", "p99"});
  PrintRow("attr", {MicrosCell(attr_lat.p50), MicrosCell(attr_lat.p99)});
  PrintRow("link", {MicrosCell(link_lat.p50), MicrosCell(link_lat.p99)});

  // ---- Pruned (IVF) mode: QPS + measured recall@k -----------------------
  PrintHeader("Pruned (IVF) serving",
              "link queries, clusters=sqrt(n), recall vs exact top-" +
                  std::to_string(kTopK));
  serve::IvfOptions ivf;
  ivf.pool = &pool;
  WallTimer build_timer;
  PANE_CHECK_OK(serial_engine->BuildPrunedIndex(ivf));
  const double build_seconds = build_timer.ElapsedSeconds();
  std::printf("  index build: %s (%lld link clusters)\n",
              TimeCell(build_seconds).c_str(),
              static_cast<long long>(
                  serial_engine->link_index().num_clusters()));

  const auto recall_queries = MakeQueries(n, 512, 41);
  const std::vector<Ranking> exact =
      serial_engine->TopKTargets(recall_queries, nullptr);
  WallTimer legacy_timer;
  for (const auto& q : recall_queries) {
    LegacyTopKTargets(embedding, scorer, q.node, q.k, nullptr);
  }
  const double legacy_qps =
      recall_queries.size() / legacy_timer.ElapsedSeconds();
  double accepted_speedup = 0.0, accepted_recall = 0.0;
  int64_t accepted_nprobe = 0;
  PrintRow("nprobe", {"QPS-1t", "recall@10", "vs legacy"});
  for (const int64_t nprobe : {1, 2, 4, 8, 16, 32}) {
    if (nprobe > serial_engine->link_index().num_clusters()) break;
    WallTimer t;
    const std::vector<Ranking> approx =
        serial_engine->TopKTargetsPruned(recall_queries, nprobe, nullptr);
    const double qps = recall_queries.size() / t.ElapsedSeconds();
    double recall = 0.0;
    for (size_t i = 0; i < exact.size(); ++i) {
      recall += serve::RecallAtK(exact[i], approx[i]);
    }
    recall /= static_cast<double>(exact.size());
    telemetry.pruned.push_back({nprobe, qps, recall});
    const double speedup = qps / legacy_qps;
    char vs[32];
    std::snprintf(vs, sizeof(vs), "%.1fx", speedup);
    PrintRow("nprobe=" + std::to_string(nprobe),
             {QpsCell(qps), Cell(recall), vs});
    if (recall >= 0.9 && speedup > accepted_speedup) {
      accepted_speedup = speedup;
      accepted_recall = recall;
      accepted_nprobe = nprobe;
    }
  }
  if (accepted_nprobe > 0) {
    std::printf(
        "  acceptance: pruned nprobe=%lld is %.1fx legacy single-thread at "
        "recall@10=%.3f (target >= 5x at recall >= 0.9); exact mode "
        "%.1fx attr / %.1fx link, bitwise-identical\n",
        static_cast<long long>(accepted_nprobe), accepted_speedup,
        accepted_recall, engine_attr_qps / legacy_attr_qps,
        engine_link_qps / legacy_link_qps);
  }

  // ---- Sharded scaling (the scatter-gather router) ----------------------
  // Local fleets: the candidate space cut into N row shards, each scanned
  // by a *serial* engine, batches fanned out across the pool — so the
  // speedup column is what sharding itself buys over one serial scan of
  // the whole space. Both sides run the identical PaneServer::ExecuteBatch
  // path (parse, validate, dedup; caches off so every query is scored).
  PrintHeader("Sharded scaling",
              "router over N local row shards (serial engines, fan-out on " +
                  std::to_string(num_threads) +
                  " threads) vs an unsharded serial server");
  const std::string artifact_path =
      (std::filesystem::temp_directory_path() /
       ("bench_serve_shard_" + std::to_string(::getpid()) + ".bin"))
          .string();
  {
    NodeEmbedding artifact;
    artifact.method = "pane";
    artifact.xf = embedding.xf;
    artifact.xb = embedding.xb;
    artifact.y = embedding.y;
    artifact.features.Resize(n, 2 * h);
    artifact.features.SetBlock(0, 0, embedding.xf);
    artifact.features.SetBlock(0, h, embedding.xb);
    artifact.link_convention = LinkConvention::kForwardBackward;
    artifact.attribute_convention = AttributeConvention::kFactors;
    PANE_CHECK_OK(artifact.Save(artifact_path));
  }
  auto sharded_store = serve::EmbeddingStore::Open(artifact_path);
  PANE_CHECK(sharded_store.ok()) << sharded_store.status();

  const auto shard_queries = MakeQueries(n, engine_queries, 61);
  std::vector<std::string> attr_payloads, link_payloads;
  for (const auto& q : shard_queries) {
    attr_payloads.push_back("attr " + std::to_string(q.node) + " " +
                            std::to_string(q.k));
    link_payloads.push_back("link " + std::to_string(q.node) + " " +
                            std::to_string(q.k));
  }

  const auto parse_batch =
      [](const std::vector<std::string>& payloads, size_t begin, size_t end) {
        std::vector<serve::PaneServer::BatchEntry> batch;
        batch.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          serve::PaneServer::BatchEntry entry;
          const auto parsed = serve::ParseRequestLine(payloads[i]);
          PANE_CHECK(parsed.ok()) << parsed.status();
          entry.request = *parsed;
          batch.push_back(std::move(entry));
        }
        return batch;
      };
  /// Pumps `payloads` through `server` in batches of 64; returns QPS.
  const auto measure_qps = [&parse_batch](
                               serve::PaneServer* server,
                               const std::vector<std::string>& payloads) {
    std::vector<std::string> responses;
    bool quit = false;
    WallTimer timer;
    for (size_t i = 0; i < payloads.size(); i += 64) {
      auto batch = parse_batch(payloads, i,
                               std::min(payloads.size(), i + 64));
      server->ExecuteBatch(&batch, &responses, &quit);
    }
    return payloads.size() / timer.ElapsedSeconds();
  };
  /// Batch-of-one latencies over the first 128 payloads.
  const auto measure_latency = [&parse_batch](
                                   serve::PaneServer* server,
                                   const std::vector<std::string>& payloads) {
    std::vector<std::string> responses;
    std::vector<double> times;
    bool quit = false;
    const size_t count = std::min<size_t>(payloads.size(), 128);
    for (size_t i = 0; i < count; ++i) {
      auto batch = parse_batch(payloads, i, i + 1);
      WallTimer t;
      server->ExecuteBatch(&batch, &responses, &quit);
      times.push_back(t.ElapsedSeconds());
    }
    return Percentiles(std::move(times));
  };

  PrintRow("shards / mode", {"attr QPS", "link QPS", "speedup", "p50",
                             "p99"});
  double shard2_speedup = 0.0, shard4_speedup = 0.0;
  for (const bool pruned : {false, true}) {
    serve::ServerOptions shard_options;
    shard_options.cache_capacity = 0;
    shard_options.pruned = pruned;

    // Unsharded baseline: one serial engine behind the same server path.
    // The pruned baseline reuses serial_engine's already-built indexes.
    auto unsharded_engine = serve::QueryEngine::Create(
        embedding.xf.View(), embedding.xb.View(), embedding.y.View(),
        scorer.z(), serve::QueryEngineOptions());
    PANE_CHECK(unsharded_engine.ok()) << unsharded_engine.status();
    serve::QueryEngine* baseline_engine =
        pruned ? &*serial_engine : &*unsharded_engine;
    serve::PaneServer baseline(baseline_engine, shard_options);
    const double base_attr = measure_qps(&baseline, attr_payloads);
    const double base_link = measure_qps(&baseline, link_payloads);
    const Latency base_lat = measure_latency(&baseline, attr_payloads);
    const char* mode = pruned ? " pruned" : " exact";
    PrintRow("unsharded" + std::string(mode),
             {QpsCell(base_attr), QpsCell(base_link), "1.0x",
              MicrosCell(base_lat.p50), MicrosCell(base_lat.p99)});

    for (const int shards : {1, 2, 4}) {
      serve::IvfOptions shard_ivf;
      shard_ivf.pool = &pool;  // build-time only; queries stay serial
      auto fleet = serve::BuildLocalShards(
          *sharded_store, shards, serve::QueryEngineOptions(), shard_options,
          pruned ? &shard_ivf : nullptr);
      PANE_CHECK(fleet.ok()) << fleet.status();
      serve::RouterOptions router_options;
      router_options.pool = &pool;
      auto router =
          serve::Router::Create(std::move(fleet->backends), router_options);
      PANE_CHECK(router.ok()) << router.status();
      serve::PaneServer front(&*router, shard_options);
      const double attr_qps = measure_qps(&front, attr_payloads);
      const double link_qps = measure_qps(&front, link_payloads);
      const Latency lat = measure_latency(&front, attr_payloads);
      const double speedup = attr_qps / base_attr;
      char speedup_cell[32];
      std::snprintf(speedup_cell, sizeof(speedup_cell), "%.1fx", speedup);
      PrintRow(std::to_string(shards) + (shards == 1 ? " shard" : " shards") +
                   mode,
               {QpsCell(attr_qps), QpsCell(link_qps), speedup_cell,
                MicrosCell(lat.p50), MicrosCell(lat.p99)});
      if (!pruned && shards == 2) shard2_speedup = speedup;
      if (!pruned && shards == 4) shard4_speedup = speedup;
    }
  }
  std::printf(
      "  acceptance: exact attr QPS %.1fx at 2 shards (target >= 1.7x on "
      ">= 2 cores), %.1fx at 4 shards (target >= 3x on >= 4 cores); "
      "hardware_concurrency=%u — the fan-out cannot overlap on fewer "
      "cores than shards, but each shard's scan is 1/N of the unsharded "
      "one. Merged answers are byte-identical to the unsharded server "
      "(shard_test).\n",
      shard2_speedup, shard4_speedup, std::thread::hardware_concurrency());
  telemetry.shard2_speedup = shard2_speedup;
  telemetry.shard4_speedup = shard4_speedup;

  // ---- Metrics overhead (A/B) -------------------------------------------
  // The same exact attr batches through PaneServer::ExecuteBatch with the
  // metrics subsystem disabled vs enabled. Disabled means no registry, no
  // stage histograms, and no clock reads — the honest baseline for the
  // < 3% acceptance bound.
  PrintHeader("Metrics overhead",
              "exact attr batches, metrics_enabled off vs on "
              "(target < 3% QPS loss)");
  {
    serve::ServerOptions ab_options;
    ab_options.cache_capacity = 0;
    auto ab_engine = serve::QueryEngine::Create(
        embedding.xf.View(), embedding.xb.View(), embedding.y.View(),
        scorer.z(), serve::QueryEngineOptions());
    PANE_CHECK(ab_engine.ok()) << ab_engine.status();
    ab_options.metrics_enabled = false;
    serve::PaneServer off(&*ab_engine, ab_options);
    ab_options.metrics_enabled = true;
    serve::PaneServer on(&*ab_engine, ab_options);
    // Interleaved best-of-two per side: the bound is about steady-state
    // instrumentation cost, not first-touch page faults.
    double qps_off = 0.0, qps_on = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
      qps_off = std::max(qps_off, measure_qps(&off, attr_payloads));
      qps_on = std::max(qps_on, measure_qps(&on, attr_payloads));
    }
    telemetry.qps_metrics_off = qps_off;
    telemetry.qps_metrics_on = qps_on;
    telemetry.metrics_overhead_pct = (qps_off - qps_on) / qps_off * 100.0;
    char overhead_cell[32];
    std::snprintf(overhead_cell, sizeof(overhead_cell), "%.2f%%",
                  telemetry.metrics_overhead_pct);
    PrintRow("metrics", {"off", "on", "overhead"});
    PrintRow("attr QPS", {QpsCell(qps_off), QpsCell(qps_on), overhead_cell});
  }

  // ---- Metrics exposition round-trip ------------------------------------
  // A 2-shard local fleet sharing one registry, driven through the full
  // session path (decode -> batch -> encode), then the `metrics` verb: the
  // shard engines must have recorded engine-scan samples and the fronting
  // router fan-out samples, all visible in one exposition.
  PrintHeader("Metrics exposition",
              "`metrics` verb round-trip, 2 local shards, one registry");
  {
    obs::MetricsRegistry registry;
    serve::ServerOptions shard2_options;
    shard2_options.cache_capacity = 0;
    shard2_options.metrics = &registry;
    serve::QueryEngineOptions shard2_engine_options;
    shard2_engine_options.metrics = &registry;
    auto fleet2 = serve::BuildLocalShards(*sharded_store, 2,
                                          shard2_engine_options,
                                          shard2_options, nullptr);
    PANE_CHECK(fleet2.ok()) << fleet2.status();
    serve::RouterOptions router2_options;
    router2_options.pool = &pool;
    router2_options.metrics = &registry;
    auto router2 = serve::Router::Create(std::move(fleet2->backends),
                                         router2_options);
    PANE_CHECK(router2.ok()) << router2.status();
    serve::PaneServer front(&*router2, shard2_options);
    std::istringstream in("attr 1 10\nlink 1 10\nmetrics\nquit\n");
    std::ostringstream out;
    front.ServeStream(in, out);
    const std::string stream = out.str();
    const size_t begin = stream.find("# TYPE");
    const size_t end_marker = stream.find("# EOF");
    PANE_CHECK(begin != std::string::npos && end_marker != std::string::npos)
        << "metrics verb answered no exposition";
    telemetry.metrics_dump = stream.substr(begin, end_marker + 5 - begin);
    const auto sample = [&telemetry](const std::string& name) -> long long {
      const std::string needle = '\n' + name + ' ';
      const size_t pos = telemetry.metrics_dump.find(needle);
      if (pos == std::string::npos) return 0;
      return std::strtoll(telemetry.metrics_dump.c_str() + pos +
                              needle.size(),
                          nullptr, 10);
    };
    telemetry.stage_scan_count = sample("pane_stage_engine_scan_us_count");
    telemetry.stage_fanout_count = sample("pane_stage_fanout_us_count");
    PANE_CHECK(telemetry.stage_scan_count > 0)
        << "shard engines recorded no engine-scan samples";
    PANE_CHECK(telemetry.stage_fanout_count > 0)
        << "router recorded no fan-out samples";
    std::printf(
        "  pane_stage_engine_scan_us_count=%lld "
        "pane_stage_fanout_us_count=%lld — shard scans and router fan-out "
        "report through one registry\n",
        static_cast<long long>(telemetry.stage_scan_count),
        static_cast<long long>(telemetry.stage_fanout_count));
  }
  std::filesystem::remove(artifact_path);

  // ---- Concurrent connections over the epoll transport ------------------
  // Every connection runs on the single loop thread; the table shows how
  // round-trip QPS scales with open connections (the loop interleaves
  // them) and what the binary framing buys over newline scanning on the
  // same conversation.
  PrintHeader("Concurrent serving",
              "epoll transport, attr round-trips per connection, line vs "
              "frame wire");
  serve::ServerOptions server_options;
  serve::PaneServer server(&*pooled_engine, server_options);
  const auto port = server.ListenTcp(0);
  PANE_CHECK(port.ok()) << port.status();
  std::thread loop([&server] { server.AcceptLoop(); });
  const int64_t per_conn = std::max<int64_t>(32, 2000000 / n);
  PrintRow("connections / wire", {"QPS", "p50", "p99"});
  for (const int connections : {1, 4, 16}) {
    for (const bool framed : {false, true}) {
      std::vector<std::vector<double>> times(
          static_cast<size_t>(connections));
      WallTimer wall;
      std::vector<std::thread> clients;
      clients.reserve(static_cast<size_t>(connections));
      for (int c = 0; c < connections; ++c) {
        clients.emplace_back([&, c] {
          times[static_cast<size_t>(c)] =
              RunClient(*port, framed, per_conn, n,
                        51 + static_cast<uint64_t>(c));
        });
      }
      for (auto& client : clients) client.join();
      const double seconds = wall.ElapsedSeconds();
      std::vector<double> all;
      for (const auto& t : times) all.insert(all.end(), t.begin(), t.end());
      const Latency lat = Percentiles(std::move(all));
      PrintRow(std::to_string(connections) +
                   (framed ? " conn frame" : " conn line"),
               {QpsCell(connections * per_conn / seconds),
                MicrosCell(lat.p50), MicrosCell(lat.p99)});
    }
  }
  server.Shutdown();
  loop.join();

  // ---- JSON telemetry snapshot ------------------------------------------
  if (!json_path.empty()) {
    std::string json = "{\n";
    json += "  \"bench\": \"serve\",\n";
    json += "  \"n\": " + std::to_string(telemetry.n) + ",\n";
    json += "  \"d\": " + std::to_string(telemetry.d) + ",\n";
    json += "  \"h\": " + std::to_string(telemetry.h) + ",\n";
    json += "  \"legacy_attr_qps\": " +
            JsonNumber(telemetry.legacy_attr_qps) + ",\n";
    json += "  \"exact_attr_qps\": " +
            JsonNumber(telemetry.exact_attr_qps) + ",\n";
    json += "  \"legacy_link_qps\": " +
            JsonNumber(telemetry.legacy_link_qps) + ",\n";
    json += "  \"exact_link_qps\": " +
            JsonNumber(telemetry.exact_link_qps) + ",\n";
    json += "  \"attr_p50_us\": " + JsonNumber(telemetry.attr_p50_us) + ",\n";
    json += "  \"attr_p99_us\": " + JsonNumber(telemetry.attr_p99_us) + ",\n";
    json += "  \"link_p50_us\": " + JsonNumber(telemetry.link_p50_us) + ",\n";
    json += "  \"link_p99_us\": " + JsonNumber(telemetry.link_p99_us) + ",\n";
    json += "  \"pruned\": [";
    for (size_t i = 0; i < telemetry.pruned.size(); ++i) {
      const auto& row = telemetry.pruned[i];
      json += i == 0 ? "\n" : ",\n";
      json += "    {\"nprobe\": " + std::to_string(row.nprobe) +
              ", \"qps\": " + JsonNumber(row.qps) +
              ", \"recall_at_" + std::to_string(kTopK) +
              "\": " + JsonNumber(row.recall) + "}";
    }
    json += "\n  ],\n";
    json += "  \"shard2_speedup\": " +
            JsonNumber(telemetry.shard2_speedup) + ",\n";
    json += "  \"shard4_speedup\": " +
            JsonNumber(telemetry.shard4_speedup) + ",\n";
    json += "  \"qps_metrics_off\": " +
            JsonNumber(telemetry.qps_metrics_off) + ",\n";
    json += "  \"qps_metrics_on\": " +
            JsonNumber(telemetry.qps_metrics_on) + ",\n";
    json += "  \"metrics_overhead_pct\": " +
            JsonNumber(telemetry.metrics_overhead_pct) + ",\n";
    json += "  \"stage_scan_count\": " +
            std::to_string(telemetry.stage_scan_count) + ",\n";
    json += "  \"stage_fanout_count\": " +
            std::to_string(telemetry.stage_fanout_count) + ",\n";
    json += "  \"metrics_dump\": \"" + JsonEscape(telemetry.metrics_dump) +
            "\"\n";
    json += "}";
    WriteJsonFile(json_path, json);
  }
}

}  // namespace bench
}  // namespace pane

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddString("json", "",
                  "write a JSON telemetry snapshot (QPS, latency "
                  "percentiles, recall sweep, metrics exposition) to this "
                  "path, e.g. BENCH_serve.json");
  PANE_CHECK_OK(flags.Parse(argc, argv));
  pane::bench::Run(flags.GetString("json"));
  return 0;
}
