# Empty dependencies file for bench_fig8_greedyinit_attr.
# This may be replaced when dependencies are built.
