file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_greedyinit_attr.dir/bench/bench_fig8_greedyinit_attr.cc.o"
  "CMakeFiles/bench_fig8_greedyinit_attr.dir/bench/bench_fig8_greedyinit_attr.cc.o.d"
  "bench_fig8_greedyinit_attr"
  "bench_fig8_greedyinit_attr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_greedyinit_attr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
