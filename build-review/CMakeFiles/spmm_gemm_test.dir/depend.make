# Empty dependencies file for spmm_gemm_test.
# This may be replaced when dependencies are built.
