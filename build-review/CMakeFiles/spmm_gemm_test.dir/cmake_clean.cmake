file(REMOVE_RECURSE
  "CMakeFiles/spmm_gemm_test.dir/tests/spmm_gemm_test.cc.o"
  "CMakeFiles/spmm_gemm_test.dir/tests/spmm_gemm_test.cc.o.d"
  "spmm_gemm_test"
  "spmm_gemm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmm_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
