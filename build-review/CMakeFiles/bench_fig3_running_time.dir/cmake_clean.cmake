file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_running_time.dir/bench/bench_fig3_running_time.cc.o"
  "CMakeFiles/bench_fig3_running_time.dir/bench/bench_fig3_running_time.cc.o.d"
  "bench_fig3_running_time"
  "bench_fig3_running_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_running_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
