file(REMOVE_RECURSE
  "CMakeFiles/logging_timer_test.dir/tests/logging_timer_test.cc.o"
  "CMakeFiles/logging_timer_test.dir/tests/logging_timer_test.cc.o.d"
  "logging_timer_test"
  "logging_timer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logging_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
