# Empty compiler generated dependencies file for logging_timer_test.
# This may be replaced when dependencies are built.
