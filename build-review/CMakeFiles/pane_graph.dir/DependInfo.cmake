
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cc" "CMakeFiles/pane_graph.dir/src/graph/algorithms.cc.o" "gcc" "CMakeFiles/pane_graph.dir/src/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/pane_graph.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/pane_graph.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/pane_graph.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/pane_graph.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "CMakeFiles/pane_graph.dir/src/graph/graph_io.cc.o" "gcc" "CMakeFiles/pane_graph.dir/src/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/random_walk.cc" "CMakeFiles/pane_graph.dir/src/graph/random_walk.cc.o" "gcc" "CMakeFiles/pane_graph.dir/src/graph/random_walk.cc.o.d"
  "/root/repo/src/graph/text_parser.cc" "CMakeFiles/pane_graph.dir/src/graph/text_parser.cc.o" "gcc" "CMakeFiles/pane_graph.dir/src/graph/text_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/pane_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
