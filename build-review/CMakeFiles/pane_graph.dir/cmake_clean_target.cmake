file(REMOVE_RECURSE
  "libpane_graph.a"
)
