# Empty dependencies file for pane_graph.
# This may be replaced when dependencies are built.
