file(REMOVE_RECURSE
  "CMakeFiles/pane_graph.dir/src/graph/algorithms.cc.o"
  "CMakeFiles/pane_graph.dir/src/graph/algorithms.cc.o.d"
  "CMakeFiles/pane_graph.dir/src/graph/generators.cc.o"
  "CMakeFiles/pane_graph.dir/src/graph/generators.cc.o.d"
  "CMakeFiles/pane_graph.dir/src/graph/graph.cc.o"
  "CMakeFiles/pane_graph.dir/src/graph/graph.cc.o.d"
  "CMakeFiles/pane_graph.dir/src/graph/graph_io.cc.o"
  "CMakeFiles/pane_graph.dir/src/graph/graph_io.cc.o.d"
  "CMakeFiles/pane_graph.dir/src/graph/random_walk.cc.o"
  "CMakeFiles/pane_graph.dir/src/graph/random_walk.cc.o.d"
  "CMakeFiles/pane_graph.dir/src/graph/text_parser.cc.o"
  "CMakeFiles/pane_graph.dir/src/graph/text_parser.cc.o.d"
  "libpane_graph.a"
  "libpane_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
