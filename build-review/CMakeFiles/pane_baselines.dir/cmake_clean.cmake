file(REMOVE_RECURSE
  "CMakeFiles/pane_baselines.dir/src/baselines/bane.cc.o"
  "CMakeFiles/pane_baselines.dir/src/baselines/bane.cc.o.d"
  "CMakeFiles/pane_baselines.dir/src/baselines/bla_like.cc.o"
  "CMakeFiles/pane_baselines.dir/src/baselines/bla_like.cc.o.d"
  "CMakeFiles/pane_baselines.dir/src/baselines/lqanr.cc.o"
  "CMakeFiles/pane_baselines.dir/src/baselines/lqanr.cc.o.d"
  "CMakeFiles/pane_baselines.dir/src/baselines/nrp.cc.o"
  "CMakeFiles/pane_baselines.dir/src/baselines/nrp.cc.o.d"
  "CMakeFiles/pane_baselines.dir/src/baselines/tadw.cc.o"
  "CMakeFiles/pane_baselines.dir/src/baselines/tadw.cc.o.d"
  "libpane_baselines.a"
  "libpane_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
