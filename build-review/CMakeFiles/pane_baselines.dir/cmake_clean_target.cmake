file(REMOVE_RECURSE
  "libpane_baselines.a"
)
