# Empty dependencies file for pane_baselines.
# This may be replaced when dependencies are built.
