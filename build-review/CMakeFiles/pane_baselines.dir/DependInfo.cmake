
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bane.cc" "CMakeFiles/pane_baselines.dir/src/baselines/bane.cc.o" "gcc" "CMakeFiles/pane_baselines.dir/src/baselines/bane.cc.o.d"
  "/root/repo/src/baselines/bla_like.cc" "CMakeFiles/pane_baselines.dir/src/baselines/bla_like.cc.o" "gcc" "CMakeFiles/pane_baselines.dir/src/baselines/bla_like.cc.o.d"
  "/root/repo/src/baselines/lqanr.cc" "CMakeFiles/pane_baselines.dir/src/baselines/lqanr.cc.o" "gcc" "CMakeFiles/pane_baselines.dir/src/baselines/lqanr.cc.o.d"
  "/root/repo/src/baselines/nrp.cc" "CMakeFiles/pane_baselines.dir/src/baselines/nrp.cc.o" "gcc" "CMakeFiles/pane_baselines.dir/src/baselines/nrp.cc.o.d"
  "/root/repo/src/baselines/tadw.cc" "CMakeFiles/pane_baselines.dir/src/baselines/tadw.cc.o" "gcc" "CMakeFiles/pane_baselines.dir/src/baselines/tadw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/pane_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_common.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
