file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_node_classification.dir/bench/bench_fig2_node_classification.cc.o"
  "CMakeFiles/bench_fig2_node_classification.dir/bench/bench_fig2_node_classification.cc.o.d"
  "bench_fig2_node_classification"
  "bench_fig2_node_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_node_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
