# Empty compiler generated dependencies file for bench_fig2_node_classification.
# This may be replaced when dependencies are built.
