file(REMOVE_RECURSE
  "CMakeFiles/text_parser_test.dir/tests/text_parser_test.cc.o"
  "CMakeFiles/text_parser_test.dir/tests/text_parser_test.cc.o.d"
  "text_parser_test"
  "text_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
