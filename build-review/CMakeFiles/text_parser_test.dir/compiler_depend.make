# Empty compiler generated dependencies file for text_parser_test.
# This may be replaced when dependencies are built.
