file(REMOVE_RECURSE
  "CMakeFiles/pane_parallel.dir/src/parallel/thread_pool.cc.o"
  "CMakeFiles/pane_parallel.dir/src/parallel/thread_pool.cc.o.d"
  "libpane_parallel.a"
  "libpane_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
