# Empty dependencies file for pane_parallel.
# This may be replaced when dependencies are built.
