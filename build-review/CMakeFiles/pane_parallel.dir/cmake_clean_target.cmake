file(REMOVE_RECURSE
  "libpane_parallel.a"
)
