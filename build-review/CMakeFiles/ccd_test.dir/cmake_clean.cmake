file(REMOVE_RECURSE
  "CMakeFiles/ccd_test.dir/tests/ccd_test.cc.o"
  "CMakeFiles/ccd_test.dir/tests/ccd_test.cc.o.d"
  "ccd_test"
  "ccd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
