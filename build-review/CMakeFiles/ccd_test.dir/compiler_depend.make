# Empty compiler generated dependencies file for ccd_test.
# This may be replaced when dependencies are built.
