# Empty dependencies file for ccd_test.
# This may be replaced when dependencies are built.
