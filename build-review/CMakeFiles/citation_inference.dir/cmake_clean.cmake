file(REMOVE_RECURSE
  "CMakeFiles/citation_inference.dir/examples/citation_inference.cpp.o"
  "CMakeFiles/citation_inference.dir/examples/citation_inference.cpp.o.d"
  "citation_inference"
  "citation_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
