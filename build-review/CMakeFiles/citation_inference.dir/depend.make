# Empty dependencies file for citation_inference.
# This may be replaced when dependencies are built.
