# Empty dependencies file for pane_api.
# This may be replaced when dependencies are built.
