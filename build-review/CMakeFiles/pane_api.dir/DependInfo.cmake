
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/adapters.cc" "CMakeFiles/pane_api.dir/src/api/adapters.cc.o" "gcc" "CMakeFiles/pane_api.dir/src/api/adapters.cc.o.d"
  "/root/repo/src/api/embedder.cc" "CMakeFiles/pane_api.dir/src/api/embedder.cc.o" "gcc" "CMakeFiles/pane_api.dir/src/api/embedder.cc.o.d"
  "/root/repo/src/api/embedders.cc" "CMakeFiles/pane_api.dir/src/api/embedders.cc.o" "gcc" "CMakeFiles/pane_api.dir/src/api/embedders.cc.o.d"
  "/root/repo/src/api/evaluate.cc" "CMakeFiles/pane_api.dir/src/api/evaluate.cc.o" "gcc" "CMakeFiles/pane_api.dir/src/api/evaluate.cc.o.d"
  "/root/repo/src/api/node_embedding.cc" "CMakeFiles/pane_api.dir/src/api/node_embedding.cc.o" "gcc" "CMakeFiles/pane_api.dir/src/api/node_embedding.cc.o.d"
  "/root/repo/src/api/registry.cc" "CMakeFiles/pane_api.dir/src/api/registry.cc.o" "gcc" "CMakeFiles/pane_api.dir/src/api/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/pane_core.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_tasks.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_datasets.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_common.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
