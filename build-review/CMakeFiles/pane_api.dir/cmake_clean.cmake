file(REMOVE_RECURSE
  "CMakeFiles/pane_api.dir/src/api/adapters.cc.o"
  "CMakeFiles/pane_api.dir/src/api/adapters.cc.o.d"
  "CMakeFiles/pane_api.dir/src/api/embedder.cc.o"
  "CMakeFiles/pane_api.dir/src/api/embedder.cc.o.d"
  "CMakeFiles/pane_api.dir/src/api/embedders.cc.o"
  "CMakeFiles/pane_api.dir/src/api/embedders.cc.o.d"
  "CMakeFiles/pane_api.dir/src/api/evaluate.cc.o"
  "CMakeFiles/pane_api.dir/src/api/evaluate.cc.o.d"
  "CMakeFiles/pane_api.dir/src/api/node_embedding.cc.o"
  "CMakeFiles/pane_api.dir/src/api/node_embedding.cc.o.d"
  "CMakeFiles/pane_api.dir/src/api/registry.cc.o"
  "CMakeFiles/pane_api.dir/src/api/registry.cc.o.d"
  "libpane_api.a"
  "libpane_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
