file(REMOVE_RECURSE
  "libpane_api.a"
)
