file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_scalability.dir/bench/bench_fig4_scalability.cc.o"
  "CMakeFiles/bench_fig4_scalability.dir/bench/bench_fig4_scalability.cc.o.d"
  "bench_fig4_scalability"
  "bench_fig4_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
