file(REMOVE_RECURSE
  "CMakeFiles/csr_matrix_test.dir/tests/csr_matrix_test.cc.o"
  "CMakeFiles/csr_matrix_test.dir/tests/csr_matrix_test.cc.o.d"
  "csr_matrix_test"
  "csr_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
