file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_attr_inference.dir/bench/bench_table4_attr_inference.cc.o"
  "CMakeFiles/bench_table4_attr_inference.dir/bench/bench_table4_attr_inference.cc.o.d"
  "bench_table4_attr_inference"
  "bench_table4_attr_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_attr_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
