# Empty compiler generated dependencies file for bench_table4_attr_inference.
# This may be replaced when dependencies are built.
