file(REMOVE_RECURSE
  "CMakeFiles/logistic_ranking_test.dir/tests/logistic_ranking_test.cc.o"
  "CMakeFiles/logistic_ranking_test.dir/tests/logistic_ranking_test.cc.o.d"
  "logistic_ranking_test"
  "logistic_ranking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logistic_ranking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
