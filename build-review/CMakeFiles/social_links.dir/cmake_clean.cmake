file(REMOVE_RECURSE
  "CMakeFiles/social_links.dir/examples/social_links.cpp.o"
  "CMakeFiles/social_links.dir/examples/social_links.cpp.o.d"
  "social_links"
  "social_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
