# Empty dependencies file for social_links.
# This may be replaced when dependencies are built.
