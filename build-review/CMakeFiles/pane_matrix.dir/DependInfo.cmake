
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/csr_matrix.cc" "CMakeFiles/pane_matrix.dir/src/matrix/csr_matrix.cc.o" "gcc" "CMakeFiles/pane_matrix.dir/src/matrix/csr_matrix.cc.o.d"
  "/root/repo/src/matrix/dense_matrix.cc" "CMakeFiles/pane_matrix.dir/src/matrix/dense_matrix.cc.o" "gcc" "CMakeFiles/pane_matrix.dir/src/matrix/dense_matrix.cc.o.d"
  "/root/repo/src/matrix/gemm.cc" "CMakeFiles/pane_matrix.dir/src/matrix/gemm.cc.o" "gcc" "CMakeFiles/pane_matrix.dir/src/matrix/gemm.cc.o.d"
  "/root/repo/src/matrix/qr.cc" "CMakeFiles/pane_matrix.dir/src/matrix/qr.cc.o" "gcc" "CMakeFiles/pane_matrix.dir/src/matrix/qr.cc.o.d"
  "/root/repo/src/matrix/rand_svd.cc" "CMakeFiles/pane_matrix.dir/src/matrix/rand_svd.cc.o" "gcc" "CMakeFiles/pane_matrix.dir/src/matrix/rand_svd.cc.o.d"
  "/root/repo/src/matrix/rand_svd_sparse.cc" "CMakeFiles/pane_matrix.dir/src/matrix/rand_svd_sparse.cc.o" "gcc" "CMakeFiles/pane_matrix.dir/src/matrix/rand_svd_sparse.cc.o.d"
  "/root/repo/src/matrix/spmm.cc" "CMakeFiles/pane_matrix.dir/src/matrix/spmm.cc.o" "gcc" "CMakeFiles/pane_matrix.dir/src/matrix/spmm.cc.o.d"
  "/root/repo/src/matrix/svd.cc" "CMakeFiles/pane_matrix.dir/src/matrix/svd.cc.o" "gcc" "CMakeFiles/pane_matrix.dir/src/matrix/svd.cc.o.d"
  "/root/repo/src/matrix/vector_ops.cc" "CMakeFiles/pane_matrix.dir/src/matrix/vector_ops.cc.o" "gcc" "CMakeFiles/pane_matrix.dir/src/matrix/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/pane_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
