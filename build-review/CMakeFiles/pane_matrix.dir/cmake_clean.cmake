file(REMOVE_RECURSE
  "CMakeFiles/pane_matrix.dir/src/matrix/csr_matrix.cc.o"
  "CMakeFiles/pane_matrix.dir/src/matrix/csr_matrix.cc.o.d"
  "CMakeFiles/pane_matrix.dir/src/matrix/dense_matrix.cc.o"
  "CMakeFiles/pane_matrix.dir/src/matrix/dense_matrix.cc.o.d"
  "CMakeFiles/pane_matrix.dir/src/matrix/gemm.cc.o"
  "CMakeFiles/pane_matrix.dir/src/matrix/gemm.cc.o.d"
  "CMakeFiles/pane_matrix.dir/src/matrix/qr.cc.o"
  "CMakeFiles/pane_matrix.dir/src/matrix/qr.cc.o.d"
  "CMakeFiles/pane_matrix.dir/src/matrix/rand_svd.cc.o"
  "CMakeFiles/pane_matrix.dir/src/matrix/rand_svd.cc.o.d"
  "CMakeFiles/pane_matrix.dir/src/matrix/rand_svd_sparse.cc.o"
  "CMakeFiles/pane_matrix.dir/src/matrix/rand_svd_sparse.cc.o.d"
  "CMakeFiles/pane_matrix.dir/src/matrix/spmm.cc.o"
  "CMakeFiles/pane_matrix.dir/src/matrix/spmm.cc.o.d"
  "CMakeFiles/pane_matrix.dir/src/matrix/svd.cc.o"
  "CMakeFiles/pane_matrix.dir/src/matrix/svd.cc.o.d"
  "CMakeFiles/pane_matrix.dir/src/matrix/vector_ops.cc.o"
  "CMakeFiles/pane_matrix.dir/src/matrix/vector_ops.cc.o.d"
  "libpane_matrix.a"
  "libpane_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
