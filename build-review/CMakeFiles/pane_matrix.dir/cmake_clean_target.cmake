file(REMOVE_RECURSE
  "libpane_matrix.a"
)
