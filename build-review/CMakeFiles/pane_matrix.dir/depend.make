# Empty dependencies file for pane_matrix.
# This may be replaced when dependencies are built.
