# Empty dependencies file for bench_table5_link_prediction.
# This may be replaced when dependencies are built.
