# Empty compiler generated dependencies file for pane_test.
# This may be replaced when dependencies are built.
