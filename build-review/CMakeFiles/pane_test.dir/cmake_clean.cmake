file(REMOVE_RECURSE
  "CMakeFiles/pane_test.dir/tests/pane_test.cc.o"
  "CMakeFiles/pane_test.dir/tests/pane_test.cc.o.d"
  "pane_test"
  "pane_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
