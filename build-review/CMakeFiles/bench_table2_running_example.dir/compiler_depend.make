# Empty compiler generated dependencies file for bench_table2_running_example.
# This may be replaced when dependencies are built.
