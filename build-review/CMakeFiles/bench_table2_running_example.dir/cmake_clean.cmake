file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_running_example.dir/bench/bench_table2_running_example.cc.o"
  "CMakeFiles/bench_table2_running_example.dir/bench/bench_table2_running_example.cc.o.d"
  "bench_table2_running_example"
  "bench_table2_running_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_running_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
