# Empty dependencies file for apmi_test.
# This may be replaced when dependencies are built.
