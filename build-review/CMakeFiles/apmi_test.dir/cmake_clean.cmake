file(REMOVE_RECURSE
  "CMakeFiles/apmi_test.dir/tests/apmi_test.cc.o"
  "CMakeFiles/apmi_test.dir/tests/apmi_test.cc.o.d"
  "apmi_test"
  "apmi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apmi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
