# Empty dependencies file for pane_bench_common.
# This may be replaced when dependencies are built.
