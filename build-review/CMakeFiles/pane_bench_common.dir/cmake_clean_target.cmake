file(REMOVE_RECURSE
  "libpane_bench_common.a"
)
