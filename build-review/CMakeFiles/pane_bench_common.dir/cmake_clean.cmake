file(REMOVE_RECURSE
  "CMakeFiles/pane_bench_common.dir/bench/bench_common.cc.o"
  "CMakeFiles/pane_bench_common.dir/bench/bench_common.cc.o.d"
  "libpane_bench_common.a"
  "libpane_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
