# Empty compiler generated dependencies file for scale_parallel.
# This may be replaced when dependencies are built.
