file(REMOVE_RECURSE
  "CMakeFiles/scale_parallel.dir/examples/scale_parallel.cpp.o"
  "CMakeFiles/scale_parallel.dir/examples/scale_parallel.cpp.o.d"
  "scale_parallel"
  "scale_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
