# Empty dependencies file for bench_fig7_greedyinit_link.
# This may be replaced when dependencies are built.
