file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_greedyinit_link.dir/bench/bench_fig7_greedyinit_link.cc.o"
  "CMakeFiles/bench_fig7_greedyinit_link.dir/bench/bench_fig7_greedyinit_link.cc.o.d"
  "bench_fig7_greedyinit_link"
  "bench_fig7_greedyinit_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_greedyinit_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
