file(REMOVE_RECURSE
  "CMakeFiles/pane_tasks.dir/src/tasks/attribute_inference.cc.o"
  "CMakeFiles/pane_tasks.dir/src/tasks/attribute_inference.cc.o.d"
  "CMakeFiles/pane_tasks.dir/src/tasks/link_prediction.cc.o"
  "CMakeFiles/pane_tasks.dir/src/tasks/link_prediction.cc.o.d"
  "CMakeFiles/pane_tasks.dir/src/tasks/logistic.cc.o"
  "CMakeFiles/pane_tasks.dir/src/tasks/logistic.cc.o.d"
  "CMakeFiles/pane_tasks.dir/src/tasks/metrics.cc.o"
  "CMakeFiles/pane_tasks.dir/src/tasks/metrics.cc.o.d"
  "CMakeFiles/pane_tasks.dir/src/tasks/node_classification.cc.o"
  "CMakeFiles/pane_tasks.dir/src/tasks/node_classification.cc.o.d"
  "CMakeFiles/pane_tasks.dir/src/tasks/ranking.cc.o"
  "CMakeFiles/pane_tasks.dir/src/tasks/ranking.cc.o.d"
  "libpane_tasks.a"
  "libpane_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
