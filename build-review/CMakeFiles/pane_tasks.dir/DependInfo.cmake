
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasks/attribute_inference.cc" "CMakeFiles/pane_tasks.dir/src/tasks/attribute_inference.cc.o" "gcc" "CMakeFiles/pane_tasks.dir/src/tasks/attribute_inference.cc.o.d"
  "/root/repo/src/tasks/link_prediction.cc" "CMakeFiles/pane_tasks.dir/src/tasks/link_prediction.cc.o" "gcc" "CMakeFiles/pane_tasks.dir/src/tasks/link_prediction.cc.o.d"
  "/root/repo/src/tasks/logistic.cc" "CMakeFiles/pane_tasks.dir/src/tasks/logistic.cc.o" "gcc" "CMakeFiles/pane_tasks.dir/src/tasks/logistic.cc.o.d"
  "/root/repo/src/tasks/metrics.cc" "CMakeFiles/pane_tasks.dir/src/tasks/metrics.cc.o" "gcc" "CMakeFiles/pane_tasks.dir/src/tasks/metrics.cc.o.d"
  "/root/repo/src/tasks/node_classification.cc" "CMakeFiles/pane_tasks.dir/src/tasks/node_classification.cc.o" "gcc" "CMakeFiles/pane_tasks.dir/src/tasks/node_classification.cc.o.d"
  "/root/repo/src/tasks/ranking.cc" "CMakeFiles/pane_tasks.dir/src/tasks/ranking.cc.o" "gcc" "CMakeFiles/pane_tasks.dir/src/tasks/ranking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/pane_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_common.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
