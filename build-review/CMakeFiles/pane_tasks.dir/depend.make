# Empty dependencies file for pane_tasks.
# This may be replaced when dependencies are built.
