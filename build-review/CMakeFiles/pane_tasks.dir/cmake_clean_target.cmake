file(REMOVE_RECURSE
  "libpane_tasks.a"
)
