# Empty compiler generated dependencies file for bench_fig5_attr_params.
# This may be replaced when dependencies are built.
