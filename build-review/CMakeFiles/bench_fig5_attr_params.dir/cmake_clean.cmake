file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_attr_params.dir/bench/bench_fig5_attr_params.cc.o"
  "CMakeFiles/bench_fig5_attr_params.dir/bench/bench_fig5_attr_params.cc.o.d"
  "bench_fig5_attr_params"
  "bench_fig5_attr_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_attr_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
