file(REMOVE_RECURSE
  "CMakeFiles/dense_matrix_test.dir/tests/dense_matrix_test.cc.o"
  "CMakeFiles/dense_matrix_test.dir/tests/dense_matrix_test.cc.o.d"
  "dense_matrix_test"
  "dense_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
