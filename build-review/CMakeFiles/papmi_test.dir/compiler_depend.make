# Empty compiler generated dependencies file for papmi_test.
# This may be replaced when dependencies are built.
