file(REMOVE_RECURSE
  "CMakeFiles/papmi_test.dir/tests/papmi_test.cc.o"
  "CMakeFiles/papmi_test.dir/tests/papmi_test.cc.o.d"
  "papmi_test"
  "papmi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papmi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
