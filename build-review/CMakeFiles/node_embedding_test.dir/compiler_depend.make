# Empty compiler generated dependencies file for node_embedding_test.
# This may be replaced when dependencies are built.
