file(REMOVE_RECURSE
  "CMakeFiles/node_embedding_test.dir/tests/node_embedding_test.cc.o"
  "CMakeFiles/node_embedding_test.dir/tests/node_embedding_test.cc.o.d"
  "node_embedding_test"
  "node_embedding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_embedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
