file(REMOVE_RECURSE
  "libpane_datasets.a"
)
