
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/registry.cc" "CMakeFiles/pane_datasets.dir/src/datasets/registry.cc.o" "gcc" "CMakeFiles/pane_datasets.dir/src/datasets/registry.cc.o.d"
  "/root/repo/src/datasets/running_example.cc" "CMakeFiles/pane_datasets.dir/src/datasets/running_example.cc.o" "gcc" "CMakeFiles/pane_datasets.dir/src/datasets/running_example.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/pane_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_common.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
