# Empty dependencies file for pane_datasets.
# This may be replaced when dependencies are built.
