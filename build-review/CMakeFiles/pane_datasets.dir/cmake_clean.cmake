file(REMOVE_RECURSE
  "CMakeFiles/pane_datasets.dir/src/datasets/registry.cc.o"
  "CMakeFiles/pane_datasets.dir/src/datasets/registry.cc.o.d"
  "CMakeFiles/pane_datasets.dir/src/datasets/running_example.cc.o"
  "CMakeFiles/pane_datasets.dir/src/datasets/running_example.cc.o.d"
  "libpane_datasets.a"
  "libpane_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
