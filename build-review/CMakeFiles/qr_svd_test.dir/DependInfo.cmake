
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/qr_svd_test.cc" "CMakeFiles/qr_svd_test.dir/tests/qr_svd_test.cc.o" "gcc" "CMakeFiles/qr_svd_test.dir/tests/qr_svd_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/pane_api.dir/DependInfo.cmake"
  "/root/repo/build-review/_deps/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  "/root/repo/build-review/_deps/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_core.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_tasks.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_datasets.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
