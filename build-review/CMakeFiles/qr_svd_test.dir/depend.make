# Empty dependencies file for qr_svd_test.
# This may be replaced when dependencies are built.
