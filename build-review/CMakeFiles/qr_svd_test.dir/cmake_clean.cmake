file(REMOVE_RECURSE
  "CMakeFiles/qr_svd_test.dir/tests/qr_svd_test.cc.o"
  "CMakeFiles/qr_svd_test.dir/tests/qr_svd_test.cc.o.d"
  "qr_svd_test"
  "qr_svd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qr_svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
