file(REMOVE_RECURSE
  "libpane_core.a"
)
