file(REMOVE_RECURSE
  "CMakeFiles/pane_core.dir/src/core/affinity.cc.o"
  "CMakeFiles/pane_core.dir/src/core/affinity.cc.o.d"
  "CMakeFiles/pane_core.dir/src/core/apmi.cc.o"
  "CMakeFiles/pane_core.dir/src/core/apmi.cc.o.d"
  "CMakeFiles/pane_core.dir/src/core/ccd.cc.o"
  "CMakeFiles/pane_core.dir/src/core/ccd.cc.o.d"
  "CMakeFiles/pane_core.dir/src/core/embedding.cc.o"
  "CMakeFiles/pane_core.dir/src/core/embedding.cc.o.d"
  "CMakeFiles/pane_core.dir/src/core/greedy_init.cc.o"
  "CMakeFiles/pane_core.dir/src/core/greedy_init.cc.o.d"
  "CMakeFiles/pane_core.dir/src/core/incremental.cc.o"
  "CMakeFiles/pane_core.dir/src/core/incremental.cc.o.d"
  "CMakeFiles/pane_core.dir/src/core/pane.cc.o"
  "CMakeFiles/pane_core.dir/src/core/pane.cc.o.d"
  "CMakeFiles/pane_core.dir/src/core/papmi.cc.o"
  "CMakeFiles/pane_core.dir/src/core/papmi.cc.o.d"
  "libpane_core.a"
  "libpane_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
