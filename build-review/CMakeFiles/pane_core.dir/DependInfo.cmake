
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/affinity.cc" "CMakeFiles/pane_core.dir/src/core/affinity.cc.o" "gcc" "CMakeFiles/pane_core.dir/src/core/affinity.cc.o.d"
  "/root/repo/src/core/apmi.cc" "CMakeFiles/pane_core.dir/src/core/apmi.cc.o" "gcc" "CMakeFiles/pane_core.dir/src/core/apmi.cc.o.d"
  "/root/repo/src/core/ccd.cc" "CMakeFiles/pane_core.dir/src/core/ccd.cc.o" "gcc" "CMakeFiles/pane_core.dir/src/core/ccd.cc.o.d"
  "/root/repo/src/core/embedding.cc" "CMakeFiles/pane_core.dir/src/core/embedding.cc.o" "gcc" "CMakeFiles/pane_core.dir/src/core/embedding.cc.o.d"
  "/root/repo/src/core/greedy_init.cc" "CMakeFiles/pane_core.dir/src/core/greedy_init.cc.o" "gcc" "CMakeFiles/pane_core.dir/src/core/greedy_init.cc.o.d"
  "/root/repo/src/core/incremental.cc" "CMakeFiles/pane_core.dir/src/core/incremental.cc.o" "gcc" "CMakeFiles/pane_core.dir/src/core/incremental.cc.o.d"
  "/root/repo/src/core/pane.cc" "CMakeFiles/pane_core.dir/src/core/pane.cc.o" "gcc" "CMakeFiles/pane_core.dir/src/core/pane.cc.o.d"
  "/root/repo/src/core/papmi.cc" "CMakeFiles/pane_core.dir/src/core/papmi.cc.o" "gcc" "CMakeFiles/pane_core.dir/src/core/papmi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/pane_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/pane_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
