# Empty dependencies file for pane_core.
# This may be replaced when dependencies are built.
