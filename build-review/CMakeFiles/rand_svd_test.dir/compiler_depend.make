# Empty compiler generated dependencies file for rand_svd_test.
# This may be replaced when dependencies are built.
