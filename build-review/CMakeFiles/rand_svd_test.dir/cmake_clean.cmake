file(REMOVE_RECURSE
  "CMakeFiles/rand_svd_test.dir/tests/rand_svd_test.cc.o"
  "CMakeFiles/rand_svd_test.dir/tests/rand_svd_test.cc.o.d"
  "rand_svd_test"
  "rand_svd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rand_svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
