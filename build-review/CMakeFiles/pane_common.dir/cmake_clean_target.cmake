file(REMOVE_RECURSE
  "libpane_common.a"
)
