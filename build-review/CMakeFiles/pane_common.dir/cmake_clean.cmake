file(REMOVE_RECURSE
  "CMakeFiles/pane_common.dir/src/common/flags.cc.o"
  "CMakeFiles/pane_common.dir/src/common/flags.cc.o.d"
  "CMakeFiles/pane_common.dir/src/common/logging.cc.o"
  "CMakeFiles/pane_common.dir/src/common/logging.cc.o.d"
  "CMakeFiles/pane_common.dir/src/common/random.cc.o"
  "CMakeFiles/pane_common.dir/src/common/random.cc.o.d"
  "CMakeFiles/pane_common.dir/src/common/status.cc.o"
  "CMakeFiles/pane_common.dir/src/common/status.cc.o.d"
  "CMakeFiles/pane_common.dir/src/common/string_util.cc.o"
  "CMakeFiles/pane_common.dir/src/common/string_util.cc.o.d"
  "CMakeFiles/pane_common.dir/src/common/timer.cc.o"
  "CMakeFiles/pane_common.dir/src/common/timer.cc.o.d"
  "libpane_common.a"
  "libpane_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
