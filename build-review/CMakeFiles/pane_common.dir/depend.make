# Empty dependencies file for pane_common.
# This may be replaced when dependencies are built.
