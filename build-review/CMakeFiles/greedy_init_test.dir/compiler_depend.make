# Empty compiler generated dependencies file for greedy_init_test.
# This may be replaced when dependencies are built.
