file(REMOVE_RECURSE
  "CMakeFiles/greedy_init_test.dir/tests/greedy_init_test.cc.o"
  "CMakeFiles/greedy_init_test.dir/tests/greedy_init_test.cc.o.d"
  "greedy_init_test"
  "greedy_init_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_init_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
