file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_link_params.dir/bench/bench_fig6_link_params.cc.o"
  "CMakeFiles/bench_fig6_link_params.dir/bench/bench_fig6_link_params.cc.o.d"
  "bench_fig6_link_params"
  "bench_fig6_link_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_link_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
