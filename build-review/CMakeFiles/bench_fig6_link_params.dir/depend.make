# Empty dependencies file for bench_fig6_link_params.
# This may be replaced when dependencies are built.
