file(REMOVE_RECURSE
  "CMakeFiles/pane_cli.dir/examples/pane_cli.cpp.o"
  "CMakeFiles/pane_cli.dir/examples/pane_cli.cpp.o.d"
  "pane_cli"
  "pane_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pane_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
