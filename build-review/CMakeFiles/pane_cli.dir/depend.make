# Empty dependencies file for pane_cli.
# This may be replaced when dependencies are built.
