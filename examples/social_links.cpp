// Social-network link prediction (the paper's Facebook motif): an
// undirected friendship graph with profile attributes. Removes 30% of the
// friendships, trains PANE and the topology-only NRP baseline on the
// residual graph, and compares who recovers the hidden friendships better —
// the Table 5 experiment in miniature, showing the value of attributes.
//
//   ./examples/social_links [--scale=1.0]
#include <cstdio>

#include "src/baselines/nrp.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/core/pane.h"
#include "src/datasets/registry.h"
#include "src/tasks/link_prediction.h"

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddDouble("scale", 1.0, "dataset scale factor");
  PANE_CHECK_OK(flags.Parse(argc, argv));

  const pane::AttributedGraph graph =
      *pane::MakeDatasetByName("facebook", flags.GetDouble("scale"));
  std::printf("social network: %s\n", graph.Summary().c_str());

  const auto split = pane::SplitEdges(graph, 0.3, /*seed=*/5).ValueOrDie();
  std::printf("held out %zu friendships (+%zu sampled non-edges)\n\n",
              split.test_positives.size(), split.test_negatives.size());

  // PANE: uses both topology and profile attributes.
  pane::PaneOptions options;
  options.k = 128;
  options.num_threads = 2;
  const auto embedding =
      pane::Pane(options).Train(split.residual_graph).ValueOrDie();
  const pane::EdgeScorer scorer(embedding);
  const pane::AucAp pane_result = pane::EvaluateLinkPrediction(
      split, [&](int64_t u, int64_t v) { return scorer.ScoreUndirected(u, v); });

  // NRP: topology only.
  pane::NrpOptions nrp_options;
  const auto nrp = pane::TrainNrp(split.residual_graph, nrp_options).ValueOrDie();
  const pane::AucAp nrp_result = pane::EvaluateLinkPrediction(
      split,
      [&](int64_t u, int64_t v) { return nrp.Score(u, v) + nrp.Score(v, u); });

  std::printf("link prediction on hidden friendships:\n");
  std::printf("  PANE (topology + attributes):  AUC = %.3f, AP = %.3f\n",
              pane_result.auc, pane_result.ap);
  std::printf("  NRP  (topology only):          AUC = %.3f, AP = %.3f\n",
              nrp_result.auc, nrp_result.ap);

  // A concrete recommendation: the strongest unlinked candidate for user 0.
  int64_t best = -1;
  double best_score = -1e300;
  for (int64_t v = 1; v < graph.num_nodes(); ++v) {
    if (split.residual_graph.adjacency().At(0, v) > 0.0) continue;
    const double s = scorer.ScoreUndirected(0, v);
    if (s > best_score) {
      best_score = s;
      best = v;
    }
  }
  std::printf(
      "\nfriend suggestion for user 0: user %lld (score %.3f, %s)\n",
      static_cast<long long>(best), best_score,
      graph.adjacency().At(0, best) > 0.0 ? "was a held-out friend"
                                          : "new suggestion");
  return 0;
}
