// Frame-protocol filter for shell harnesses: converts between the
// newline-delimited text of line_protocol.h and the length-prefixed
// binary framing of frame_protocol.h, one payload per line / frame.
//
//   # drive a frame-mode server from a text script and diff against the
//   # line-mode golden transcript
//   ./pane_frame --encode < queries.txt |
//     ./pane_server --embedding=emb.bin --protocol=frame |
//     ./pane_frame --decode > responses.txt
//
// --decode exits nonzero on any framing error (garbage magic, hostile
// length, truncated trailing frame), which is what lets CI assert the
// server's frame output is well-formed end to end.
#include <iostream>
#include <iterator>
#include <string>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/serve/frame_protocol.h"

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddBool("encode", false,
                "read text lines from stdin, write one frame per nonblank "
                "line to stdout");
  flags.AddBool("decode", false,
                "read frames from stdin, write one text line per frame to "
                "stdout; exit 1 on a framing error");
  PANE_CHECK_OK(flags.Parse(argc, argv));
  PANE_CHECK(flags.GetBool("encode") != flags.GetBool("decode"))
      << "exactly one of --encode / --decode is required";

  if (flags.GetBool("encode")) {
    std::string line;
    std::string output;
    while (std::getline(std::cin, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      pane::serve::AppendFrame(line, &output);
    }
    std::cout.write(output.data(),
                    static_cast<std::streamsize>(output.size()));
    std::cout.flush();
    return 0;
  }

  const std::string input(std::istreambuf_iterator<char>(std::cin), {});
  pane::serve::FrameCodec codec;
  size_t pos = 0;
  while (true) {
    std::string_view payload;
    std::string error;
    const auto decoded = codec.Decode(input, &pos, &payload, &error);
    if (decoded == pane::serve::ProtocolCodec::Decoded::kNeedMore) {
      if (pos < input.size()) {
        std::string_view unused;
        codec.DecodeFinal(input.substr(pos), &unused, &error);
        std::cerr << "pane_frame: " << error << '\n';
        return 1;
      }
      return 0;
    }
    if (decoded == pane::serve::ProtocolCodec::Decoded::kError) {
      std::cerr << "pane_frame: " << error << '\n';
      return 1;
    }
    std::cout << payload << '\n';
  }
}
