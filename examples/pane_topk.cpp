// Offline top-k reference client: answers the same line protocol as
// pane_server, but through a direct, independent implementation of the
// paper's two prediction scores — a full scan with Eq. 21 / Eq. 22 scoring
// and deterministic nth_element selection, no serving engine involved.
//
// Its job is differential testing: feed the same request script to a
// pane_server (exact mode) and to pane_topk over the same artifact and
// `diff` the outputs — they must be byte-identical, since both paths
// produce bitwise-equal scores and rank under the same (score desc, index
// asc) order. The serve-smoke CI job does exactly that. Don't script
// `stats` into a diffed run; it is server-side only.
//
// With --protocol=frame the same conversation runs over the binary
// length-prefixed framing of frame_protocol.h instead of lines, so the
// frame leg of the differential harness can `cmp` server and reference
// bytes too.
//
//   ./pane_topk --embedding=emb.bin [--graph=/data/cora] < queries.txt
#include <iostream>
#include <iterator>
#include <string>

#include "src/api/node_embedding.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/topk.h"
#include "src/core/embedding.h"
#include "src/graph/graph_io.h"
#include "src/parallel/thread_pool.h"
#include "src/serve/frame_protocol.h"
#include "src/serve/line_protocol.h"
#include "src/serve/protocol.h"
#include "src/serve/shard_plan.h"

namespace {

using pane::serve::Request;

// The pre-serving-subsystem per-query scan: score every candidate, keep
// the k best under the deterministic ranking order.
pane::Ranking ScanAttributes(const pane::PaneEmbedding& embedding, int64_t v,
                             int64_t k, const pane::AttributedGraph* exclude) {
  pane::Ranking candidates;
  candidates.reserve(static_cast<size_t>(embedding.num_attributes()));
  for (int64_t r = 0; r < embedding.num_attributes(); ++r) {
    if (exclude != nullptr && exclude->attributes().At(v, r) != 0.0) continue;
    candidates.emplace_back(r, embedding.AttributeScore(v, r));
  }
  return pane::SelectTopK(std::move(candidates), k);
}

pane::Ranking ScanTargets(const pane::PaneEmbedding& embedding,
                          const pane::EdgeScorer& scorer, int64_t u, int64_t k,
                          const pane::AttributedGraph* exclude) {
  pane::Ranking candidates;
  candidates.reserve(static_cast<size_t>(embedding.num_nodes()));
  for (int64_t v = 0; v < embedding.num_nodes(); ++v) {
    if (v == u) continue;
    if (exclude != nullptr && exclude->adjacency().At(u, v) != 0.0) continue;
    candidates.emplace_back(v, scorer.Score(u, v));
  }
  return pane::SelectTopK(std::move(candidates), k);
}

/// Answers one request payload with the same response text pane_server
/// produces (sans wire framing). Sets *quit on `quit`.
std::string Respond(const pane::PaneEmbedding& embedding,
                    const pane::EdgeScorer& scorer,
                    const pane::AttributedGraph* exclude,
                    std::string_view payload, bool* quit) {
  const auto parsed = pane::serve::ParseRequestLine(payload);
  if (!parsed.ok()) {
    return pane::serve::FormatError(parsed.status().message());
  }
  const Request& r = *parsed;
  if (r.type == Request::Type::kQuit) {
    *quit = true;
    return "bye";
  }
  if (r.type == Request::Type::kStats) return "stats ok offline";
  if (r.type == Request::Type::kMetrics) {
    // The offline scanner keeps no metrics; answer an empty but
    // well-terminated exposition so scripted differentials can still pipe
    // the same request file through both sides.
    return "# EOF";
  }
  if (r.type == Request::Type::kPlan) {
    // Same full-range 0/1 plan an unsharded pane_server reports, so the
    // shard-smoke differential can script `plan` through both sides.
    pane::serve::ShardSpec spec;
    spec.shard_index = 0;
    spec.shard_count = 1;
    spec.num_nodes = embedding.num_nodes();
    spec.num_attributes = embedding.num_attributes();
    spec.dim = embedding.xf.cols();
    spec.node_end = spec.num_nodes;
    spec.attr_end = spec.num_attributes;
    spec.has_attributes = true;
    spec.has_links = true;
    return pane::serve::FormatPlanResponse(spec);
  }
  const int64_t n = embedding.num_nodes();
  const int64_t d = embedding.num_attributes();
  if (r.a < 0 || r.a >= n) {
    return pane::serve::FormatError("node out of range");
  }
  switch (r.type) {
    case Request::Type::kTopKAttributes:
      return pane::serve::FormatRanking(
          r, ScanAttributes(embedding, r.a, r.k, exclude));
    case Request::Type::kTopKTargets:
      return pane::serve::FormatRanking(
          r, ScanTargets(embedding, scorer, r.a, r.k, exclude));
    case Request::Type::kAttributePair:
      if (r.b < 0 || r.b >= d) {
        return pane::serve::FormatError("id out of range");
      }
      return pane::serve::FormatScore(r, embedding.AttributeScore(r.a, r.b));
    case Request::Type::kLinkPair:
      if (r.b < 0 || r.b >= n) {
        return pane::serve::FormatError("id out of range");
      }
      return pane::serve::FormatScore(r, scorer.Score(r.a, r.b));
    default:
      return pane::serve::FormatError("unsupported request");
  }
}

}  // namespace

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddString("embedding", "", "NodeEmbedding artifact to score");
  flags.AddString("graph", "",
                  "optional graph for recommendation mode (same semantics "
                  "as pane_server --graph)");
  flags.AddString("protocol", "line",
                  "wire format: 'line' (newline-delimited text) or 'frame' "
                  "(length-prefixed binary)");
  PANE_CHECK_OK(flags.Parse(argc, argv));
  PANE_CHECK(!flags.GetString("embedding").empty())
      << "--embedding=<artifact> is required";

  const auto artifact =
      pane::NodeEmbedding::Load(flags.GetString("embedding"));
  PANE_CHECK(artifact.ok()) << artifact.status();
  PANE_CHECK(artifact->has_attribute_factors())
      << "pane_topk needs the xf/xb/y factor blocks (method '"
      << artifact->method << "' lacks them)";
  pane::PaneEmbedding embedding;
  embedding.xf = artifact->xf;
  embedding.xb = artifact->xb;
  embedding.y = artifact->y;
  const pane::EdgeScorer scorer(embedding);

  pane::AttributedGraph exclude_graph;
  const pane::AttributedGraph* exclude = nullptr;
  if (!flags.GetString("graph").empty()) {
    pane::ThreadPool pool(2);
    auto loaded = pane::LoadGraphAuto(flags.GetString("graph"), &pool);
    PANE_CHECK(loaded.ok()) << loaded.status();
    exclude_graph = loaded.MoveValueUnsafe();
    PANE_CHECK(exclude_graph.num_nodes() == embedding.num_nodes())
        << "graph / embedding node-count mismatch";
    exclude = &exclude_graph;
  }

  pane::serve::Protocol protocol = pane::serve::Protocol::kLine;
  PANE_CHECK(pane::serve::ParseProtocolName(flags.GetString("protocol"),
                                            &protocol) &&
             protocol != pane::serve::Protocol::kAuto)
      << "--protocol must be 'line' or 'frame', got '"
      << flags.GetString("protocol") << "'";

  bool quit = false;
  if (protocol == pane::serve::Protocol::kLine) {
    std::string line;
    while (!quit && std::getline(std::cin, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      std::cout << Respond(embedding, scorer, exclude, line, &quit) << '\n';
    }
    return 0;
  }

  // Frame mode: stdin is a binary frame stream, not line-oriented, so slurp
  // it whole and walk it with the same codec the server uses.
  const std::string input(std::istreambuf_iterator<char>(std::cin), {});
  pane::serve::FrameCodec codec;
  std::string output;
  size_t pos = 0;
  int exit_code = 0;
  while (!quit) {
    std::string_view payload;
    std::string error;
    const auto decoded = codec.Decode(input, &pos, &payload, &error);
    if (decoded == pane::serve::ProtocolCodec::Decoded::kNeedMore) {
      if (pos < input.size()) {
        // Trailing partial frame: mirror the server's truncated-frame error.
        std::string_view unused;
        codec.DecodeFinal(input.substr(pos), &unused, &error);
        pane::serve::AppendFrame(pane::serve::FormatError(error), &output);
        exit_code = 1;
      }
      break;
    }
    if (decoded == pane::serve::ProtocolCodec::Decoded::kError) {
      pane::serve::AppendFrame(pane::serve::FormatError(error), &output);
      exit_code = 1;
      break;
    }
    pane::serve::AppendFrame(
        Respond(embedding, scorer, exclude, payload, &quit), &output);
  }
  std::cout.write(output.data(), static_cast<std::streamsize>(output.size()));
  std::cout.flush();
  return exit_code;
}
