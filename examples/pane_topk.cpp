// Offline top-k reference client: answers the same line protocol as
// pane_server, but through a direct, independent implementation of the
// paper's two prediction scores — a full scan with Eq. 21 / Eq. 22 scoring
// and deterministic nth_element selection, no serving engine involved.
//
// Its job is differential testing: feed the same request script to a
// pane_server (exact mode) and to pane_topk over the same artifact and
// `diff` the outputs — they must be byte-identical, since both paths
// produce bitwise-equal scores and rank under the same (score desc, index
// asc) order. The serve-smoke CI job does exactly that. Don't script
// `stats` into a diffed run; it is server-side only.
//
//   ./pane_topk --embedding=emb.bin [--graph=/data/cora] < queries.txt
#include <iostream>
#include <string>

#include "src/api/node_embedding.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/topk.h"
#include "src/core/embedding.h"
#include "src/graph/graph_io.h"
#include "src/parallel/thread_pool.h"
#include "src/serve/line_protocol.h"

namespace {

using pane::serve::Request;

// The pre-serving-subsystem per-query scan: score every candidate, keep
// the k best under the deterministic ranking order.
pane::Ranking ScanAttributes(const pane::PaneEmbedding& embedding, int64_t v,
                             int64_t k, const pane::AttributedGraph* exclude) {
  pane::Ranking candidates;
  candidates.reserve(static_cast<size_t>(embedding.num_attributes()));
  for (int64_t r = 0; r < embedding.num_attributes(); ++r) {
    if (exclude != nullptr && exclude->attributes().At(v, r) != 0.0) continue;
    candidates.emplace_back(r, embedding.AttributeScore(v, r));
  }
  return pane::SelectTopK(std::move(candidates), k);
}

pane::Ranking ScanTargets(const pane::PaneEmbedding& embedding,
                          const pane::EdgeScorer& scorer, int64_t u, int64_t k,
                          const pane::AttributedGraph* exclude) {
  pane::Ranking candidates;
  candidates.reserve(static_cast<size_t>(embedding.num_nodes()));
  for (int64_t v = 0; v < embedding.num_nodes(); ++v) {
    if (v == u) continue;
    if (exclude != nullptr && exclude->adjacency().At(u, v) != 0.0) continue;
    candidates.emplace_back(v, scorer.Score(u, v));
  }
  return pane::SelectTopK(std::move(candidates), k);
}

}  // namespace

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddString("embedding", "", "NodeEmbedding artifact to score");
  flags.AddString("graph", "",
                  "optional graph for recommendation mode (same semantics "
                  "as pane_server --graph)");
  PANE_CHECK_OK(flags.Parse(argc, argv));
  PANE_CHECK(!flags.GetString("embedding").empty())
      << "--embedding=<artifact> is required";

  const auto artifact =
      pane::NodeEmbedding::Load(flags.GetString("embedding"));
  PANE_CHECK(artifact.ok()) << artifact.status();
  PANE_CHECK(artifact->has_attribute_factors())
      << "pane_topk needs the xf/xb/y factor blocks (method '"
      << artifact->method << "' lacks them)";
  pane::PaneEmbedding embedding;
  embedding.xf = artifact->xf;
  embedding.xb = artifact->xb;
  embedding.y = artifact->y;
  const pane::EdgeScorer scorer(embedding);

  pane::AttributedGraph exclude_graph;
  const pane::AttributedGraph* exclude = nullptr;
  if (!flags.GetString("graph").empty()) {
    pane::ThreadPool pool(2);
    auto loaded = pane::LoadGraphAuto(flags.GetString("graph"), &pool);
    PANE_CHECK(loaded.ok()) << loaded.status();
    exclude_graph = loaded.MoveValueUnsafe();
    PANE_CHECK(exclude_graph.num_nodes() == embedding.num_nodes())
        << "graph / embedding node-count mismatch";
    exclude = &exclude_graph;
  }

  const int64_t n = embedding.num_nodes();
  const int64_t d = embedding.num_attributes();
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto parsed = pane::serve::ParseRequestLine(line);
    if (!parsed.ok()) {
      std::cout << pane::serve::FormatError(parsed.status().message())
                << '\n';
      continue;
    }
    const Request& r = *parsed;
    if (r.type == Request::Type::kQuit) {
      std::cout << "bye\n";
      break;
    }
    if (r.type == Request::Type::kStats) {
      std::cout << "stats ok offline\n";
      continue;
    }
    if (r.a < 0 || r.a >= n) {
      std::cout << pane::serve::FormatError("node out of range") << '\n';
      continue;
    }
    switch (r.type) {
      case Request::Type::kTopKAttributes:
        std::cout << pane::serve::FormatRanking(
                         r, ScanAttributes(embedding, r.a, r.k, exclude))
                  << '\n';
        break;
      case Request::Type::kTopKTargets:
        std::cout << pane::serve::FormatRanking(
                         r, ScanTargets(embedding, scorer, r.a, r.k, exclude))
                  << '\n';
        break;
      case Request::Type::kAttributePair:
        if (r.b < 0 || r.b >= d) {
          std::cout << pane::serve::FormatError("id out of range") << '\n';
          break;
        }
        std::cout << pane::serve::FormatScore(
                         r, embedding.AttributeScore(r.a, r.b))
                  << '\n';
        break;
      case Request::Type::kLinkPair:
        if (r.b < 0 || r.b >= n) {
          std::cout << pane::serve::FormatError("id out of range") << '\n';
          break;
        }
        std::cout << pane::serve::FormatScore(r, scorer.Score(r.a, r.b))
                  << '\n';
        break;
      default:
        break;
    }
  }
  return 0;
}
