// Quickstart: build a small attributed graph by hand, train PANE, and use
// the three things an embedding gives you — node-attribute affinity scores,
// directed-edge scores, and feature vectors.
//
//   ./examples/quickstart
#include <cstdio>

#include "src/core/pane.h"
#include "src/datasets/running_example.h"

int main() {
  // The paper's Figure 1 running example: 6 nodes, 3 attributes. Build your
  // own graphs the same way with GraphBuilder (AddEdge / AddNodeAttribute /
  // AddLabel), or load one with LoadGraphText / LoadGraphBinary.
  const pane::AttributedGraph graph = pane::MakeFigure1Example();
  std::printf("input: %s\n\n", graph.Summary().c_str());

  // Train. k is the total space budget per node (k/2 forward + k/2
  // backward); alpha the random-walk stopping probability; epsilon the
  // affinity approximation error.
  pane::PaneOptions options;
  options.k = 6;
  options.alpha = 0.15;
  options.num_threads = 2;
  pane::PaneStats stats;
  const auto result = pane::Pane(options).Train(graph, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const pane::PaneEmbedding& embedding = *result;
  std::printf("trained in %.3fs (affinity %.3fs, init %.3fs, ccd %.3fs)\n",
              stats.total_seconds, stats.affinity_seconds, stats.init_seconds,
              stats.ccd_seconds);
  std::printf("objective (Eq. 4): %.4f -> %.4f\n\n", stats.objective_initial,
              stats.objective_final);

  // 1. Node-attribute affinity (Equation 21): which attributes does each
  // node relate to, counting multi-hop connections?
  std::printf("attribute scores p(v, r) = Xf[v].Y[r] + Xb[v].Y[r]:\n");
  std::printf("        r1      r2      r3\n");
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    std::printf("v%lld ", static_cast<long long>(v + 1));
    for (int64_t r = 0; r < graph.num_attributes(); ++r) {
      std::printf(" %7.3f", embedding.AttributeScore(v, r));
    }
    std::printf("\n");
  }

  // 2. Directed-edge scores (Equation 22) via the precomputed scorer.
  const pane::EdgeScorer scorer(embedding);
  std::printf("\nedge scores p(u -> w):\n");
  std::printf("  v1 -> v3 (edge):     %7.3f\n", scorer.Score(0, 2));
  std::printf("  v1 -> v6 (2 hops):   %7.3f\n", scorer.Score(0, 5));
  std::printf("  v2 -> v6 (far):      %7.3f\n", scorer.Score(1, 5));

  // 3. Raw vectors for downstream models.
  std::printf("\nforward embedding of v1: [");
  for (int64_t j = 0; j < embedding.xf.cols(); ++j) {
    std::printf("%s%.3f", j > 0 ? ", " : "", embedding.xf(0, j));
  }
  std::printf("]\n");
  return 0;
}
