// Evolving-graph scenario (the "time-varying graphs" extension from the
// paper's conclusion): maintain embeddings over a stream of edge batches.
// Each round adds new follows to a TWeibo-like graph and refreshes the
// embedding warm-started from the previous one — a couple of CCD sweeps —
// instead of retraining from scratch, comparing cost and quality.
//
//   ./examples/evolving_graph [--scale=0.5] [--rounds=3]
//                             [--memory-budget-mb=64]
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/core/incremental.h"
#include "src/core/pane.h"
#include "src/datasets/registry.h"

namespace {

pane::AttributedGraph AddEdgeBatch(const pane::AttributedGraph& g,
                                   int64_t batch, uint64_t seed) {
  pane::Rng rng(seed);
  pane::GraphBuilder builder(g.num_nodes(), g.num_attributes());
  for (int64_t u = 0; u < g.num_nodes(); ++u) {
    const auto row = g.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) builder.AddEdge(u, row.cols[p]);
    const auto attrs = g.attributes().Row(u);
    for (int64_t p = 0; p < attrs.length; ++p) {
      builder.AddNodeAttribute(u, attrs.cols[p], attrs.vals[p]);
    }
  }
  const uint64_t n = static_cast<uint64_t>(g.num_nodes());
  for (int64_t e = 0; e < batch; ++e) {
    builder.AddEdge(static_cast<int64_t>(rng.UniformInt(n)),
                    static_cast<int64_t>(rng.UniformInt(n)));
  }
  return builder.Build(false).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddDouble("scale", 0.5, "dataset scale factor");
  flags.AddInt("rounds", 3, "number of update rounds");
  flags.AddInt("memory-budget-mb", 0,
               "whole-pipeline memory budget in MiB for training and every "
               "refresh (0 = unbounded)");
  PANE_CHECK_OK(flags.Parse(argc, argv));
  const int64_t budget_mb = flags.GetInt("memory-budget-mb");

  pane::AttributedGraph graph =
      *pane::MakeDatasetByName("tweibo", flags.GetDouble("scale"));
  std::printf("initial graph: %s\n", graph.Summary().c_str());

  pane::PaneOptions options;
  options.k = 64;
  options.num_threads = 2;
  options.memory_budget_mb = budget_mb;
  pane::PaneStats train_stats;
  pane::PaneEmbedding embedding =
      pane::Pane(options).Train(graph, &train_stats).ValueOrDie();
  std::printf(
      "initial full training: %.2fs (objective %.3e; engine width=%lld "
      "panels=%lld scratch=%.1fMB, slabs %s)\n\n",
      train_stats.total_seconds, train_stats.objective_final,
      static_cast<long long>(train_stats.affinity.panel_width),
      static_cast<long long>(train_stats.affinity.num_panels),
      train_stats.affinity.scratch_bytes / 1048576.0,
      train_stats.slabs_spilled ? "mmap-spill" : "in-RAM");

  const int64_t batch = graph.num_edges() / 50;  // ~2% new edges per round
  for (int round = 1; round <= flags.GetInt("rounds"); ++round) {
    graph = AddEdgeBatch(graph, batch, 1000 + static_cast<uint64_t>(round));

    // Warm-start refresh, under the same memory budget as training.
    pane::RefreshOptions refresh_options;
    refresh_options.num_threads = 2;
    refresh_options.memory_budget_mb = budget_mb;
    pane::RefreshStats refresh_stats;
    embedding = pane::RefreshEmbedding(graph, embedding, refresh_options,
                                       &refresh_stats)
                    .ValueOrDie();

    // Full retrain, for the cost/quality comparison.
    pane::PaneStats full_stats;
    const auto full = pane::Pane(options).Train(graph, &full_stats).ValueOrDie();

    std::printf(
        "round %d (+%lld edges): refresh %.2fs vs retrain %.2fs "
        "(%.1fx faster); objective %.3e vs %.3e (%.1f%% gap); refresh "
        "engine width=%lld scratch=%.1fMB slabs=%s\n",
        round, static_cast<long long>(batch), refresh_stats.total_seconds,
        full_stats.total_seconds,
        full_stats.total_seconds / refresh_stats.total_seconds,
        refresh_stats.objective_final, full_stats.objective_final,
        100.0 * (refresh_stats.objective_final - full_stats.objective_final) /
            full_stats.objective_final,
        static_cast<long long>(refresh_stats.affinity.panel_width),
        refresh_stats.affinity.scratch_bytes / 1048576.0,
        refresh_stats.slabs_spilled ? "mmap-spill" : "in-RAM");
  }
  std::printf("\nembeddings stay serviceable at a fraction of retrain cost.\n");
  return 0;
}
