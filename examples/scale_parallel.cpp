// Scaling walkthrough (the paper's TWeibo/MAG story): generate a larger
// attributed graph, train single-thread vs parallel PANE, report the phase
// breakdown and speedup, and persist the embeddings to disk for reuse —
// the workflow for embedding a graph too large to re-train casually.
//
//   ./examples/scale_parallel [--scale=1.0] [--threads=4] [--out=emb.bin]
//                             [--memory-budget-mb=256]
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/core/pane.h"
#include "src/datasets/registry.h"

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddDouble("scale", 1.0, "dataset scale factor");
  flags.AddInt("threads", 4, "worker threads for the parallel run");
  flags.AddInt("memory-budget-mb", 0,
               "whole-pipeline memory budget in MiB (0 = unbounded)");
  flags.AddString("out", "/tmp/pane_tweibo_embedding.bin",
                  "path to save the trained embedding");
  PANE_CHECK_OK(flags.Parse(argc, argv));

  const pane::AttributedGraph graph =
      *pane::MakeDatasetByName("tweibo", flags.GetDouble("scale"));
  std::printf("graph: %s\n\n", graph.Summary().c_str());

  auto train = [&](int threads) {
    pane::PaneOptions options;
    options.k = 128;
    options.num_threads = threads;
    options.memory_budget_mb = flags.GetInt("memory-budget-mb");
    pane::PaneStats stats;
    auto embedding = pane::Pane(options).Train(graph, &stats).ValueOrDie();
    std::printf(
        "nb=%-3d total %6.2fs  (affinity %6.2fs | init %6.2fs | ccd %6.2fs)"
        "  objective %.3e\n",
        threads, stats.total_seconds, stats.affinity_seconds,
        stats.init_seconds, stats.ccd_seconds, stats.objective_final);
    std::printf(
        "       engine: width=%lld panels=%lld scratch=%.1fMB slabs=%s "
        "(%.1fMB) init-overlap=%d ccd-strip=%lld\n",
        static_cast<long long>(stats.affinity.panel_width),
        static_cast<long long>(stats.affinity.num_panels),
        stats.affinity.scratch_bytes / 1048576.0,
        stats.slabs_spilled ? "mmap-spill" : "in-RAM",
        stats.slab_bytes / 1048576.0, stats.init_blocks_overlapped,
        static_cast<long long>(stats.ccd.strip_width));
    return std::make_pair(std::move(embedding), stats);
  };

  auto [single, single_stats] = train(1);
  auto [parallel, parallel_stats] =
      train(static_cast<int>(flags.GetInt("threads")));
  std::printf("\nspeedup: %.2fx\n", single_stats.total_seconds /
                                        parallel_stats.total_seconds);

  // Persist and reload — downstream services score without re-training.
  const std::string path = flags.GetString("out");
  PANE_CHECK_OK(parallel.Save(path));
  pane::WallTimer load_timer;
  const auto loaded = pane::PaneEmbedding::Load(path).ValueOrDie();
  std::printf("saved + reloaded embeddings (%lld x %lld twice + %lld x %lld) "
              "from %s in %.0fms\n",
              static_cast<long long>(loaded.xf.rows()),
              static_cast<long long>(loaded.xf.cols()),
              static_cast<long long>(loaded.y.rows()),
              static_cast<long long>(loaded.y.cols()), path.c_str(),
              load_timer.ElapsedMillis());

  // Spot check: reloaded scores match the in-memory embedding bitwise.
  PANE_CHECK(loaded.AttributeScore(0, 0) == parallel.AttributeScore(0, 0));
  std::printf("reloaded scores verified.\n");
  return 0;
}
