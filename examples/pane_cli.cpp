// Command-line front-end: train PANE on a graph stored on disk (the text
// layout documented in src/graph/graph_io.h, which matches common public
// ANE dataset dumps) and write the embedding; or evaluate a saved embedding
// on the three downstream tasks. Demonstrates the full file-in/file-out
// workflow a production pipeline would script.
//
//   # train (writes embedding.bin)
//   ./examples/pane_cli --mode=train --graph=/data/cora --out=embedding.bin \
//        --k=128 --alpha=0.5 --epsilon=0.015 --threads=8
//   # evaluate all three tasks
//   ./examples/pane_cli --mode=eval --graph=/data/cora
//
// With --graph=demo (default) a synthetic Cora-like graph is generated and
// saved to a temp directory first, so the binary runs out of the box.
#include <cstdio>
#include <filesystem>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/core/pane.h"
#include "src/datasets/registry.h"
#include "src/graph/graph_io.h"
#include "src/tasks/attribute_inference.h"
#include "src/tasks/link_prediction.h"
#include "src/tasks/node_classification.h"

namespace {

pane::AttributedGraph LoadOrDemo(const std::string& graph_arg) {
  if (graph_arg != "demo") {
    auto loaded = pane::LoadGraphText(graph_arg);
    PANE_CHECK(loaded.ok()) << loaded.status();
    return loaded.MoveValueUnsafe();
  }
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pane_cli_demo").string();
  const pane::AttributedGraph g = *pane::MakeDatasetByName("cora", 1.0);
  PANE_CHECK_OK(pane::SaveGraphText(g, dir));
  std::printf("demo graph written to %s (reload it with --graph=%s)\n",
              dir.c_str(), dir.c_str());
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddString("mode", "eval", "train | eval");
  flags.AddString("graph", "demo", "graph directory (text layout) or 'demo'");
  flags.AddString("out", "/tmp/pane_embedding.bin", "embedding output path");
  flags.AddInt("k", 128, "space budget");
  flags.AddDouble("alpha", 0.5, "random-walk stopping probability");
  flags.AddDouble("epsilon", 0.015, "affinity error threshold");
  flags.AddInt("threads", 4, "worker threads (1 = Algorithm 1)");
  flags.AddInt("seed", 42, "random seed");
  PANE_CHECK_OK(flags.Parse(argc, argv));

  const pane::AttributedGraph graph = LoadOrDemo(flags.GetString("graph"));
  std::printf("loaded %s\n", graph.Summary().c_str());

  pane::PaneOptions options;
  options.k = static_cast<int>(flags.GetInt("k"));
  options.alpha = flags.GetDouble("alpha");
  options.epsilon = flags.GetDouble("epsilon");
  options.num_threads = static_cast<int>(flags.GetInt("threads"));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  if (flags.GetString("mode") == "train") {
    pane::PaneStats stats;
    const auto embedding = pane::Pane(options).Train(graph, &stats);
    PANE_CHECK(embedding.ok()) << embedding.status();
    PANE_CHECK_OK(embedding->Save(flags.GetString("out")));
    std::printf(
        "trained k=%d embedding in %.2fs (t=%d; affinity %.2fs, init %.2fs, "
        "ccd %.2fs); wrote %s\n",
        options.k, stats.total_seconds, stats.t, stats.affinity_seconds,
        stats.init_seconds, stats.ccd_seconds,
        flags.GetString("out").c_str());
    return 0;
  }

  PANE_CHECK(flags.GetString("mode") == "eval")
      << "unknown --mode (use train or eval)";

  {  // Attribute inference.
    const auto split = pane::SplitAttributes(graph, 0.2, options.seed);
    PANE_CHECK(split.ok()) << split.status();
    const auto embedding = pane::Pane(options).Train(split->train_graph);
    PANE_CHECK(embedding.ok()) << embedding.status();
    const pane::AucAp r =
        pane::EvaluateAttributeInference(*split, [&](int64_t v, int64_t a) {
          return embedding->AttributeScore(v, a);
        });
    std::printf("attribute inference: AUC %.3f  AP %.3f\n", r.auc, r.ap);
  }
  {  // Link prediction.
    const auto split = pane::SplitEdges(graph, 0.3, options.seed);
    PANE_CHECK(split.ok()) << split.status();
    const auto embedding = pane::Pane(options).Train(split->residual_graph);
    PANE_CHECK(embedding.ok()) << embedding.status();
    const pane::EdgeScorer scorer(*embedding);
    const pane::AucAp r =
        pane::EvaluateLinkPrediction(*split, [&](int64_t u, int64_t v) {
          return graph.undirected() ? scorer.ScoreUndirected(u, v)
                                    : scorer.Score(u, v);
        });
    std::printf("link prediction:     AUC %.3f  AP %.3f\n", r.auc, r.ap);
  }
  if (graph.has_labels()) {  // Node classification.
    const auto embedding = pane::Pane(options).Train(graph);
    PANE_CHECK(embedding.ok()) << embedding.status();
    pane::NodeClassificationOptions nc;
    nc.train_fraction = 0.5;
    nc.repeats = 3;
    const auto f1 = pane::EvaluateNodeClassification(
        pane::ConcatNormalizedEmbeddings(embedding->xf, embedding->xb), graph,
        nc);
    PANE_CHECK(f1.ok()) << f1.status();
    std::printf("node classification: micro-F1 %.3f  macro-F1 %.3f\n",
                f1->micro, f1->macro);
  } else {
    std::printf("node classification: skipped (no labels)\n");
  }
  return 0;
}
