// Command-line front-end on the unified Embedder API: pick any registered
// method with --method (PANE or a baseline), train on a graph stored on disk
// (text-layout directory, binary snapshot, or raw edge list — see
// src/graph/graph_io.h) and write the common NodeEmbedding artifact; or
// evaluate the method on the three downstream tasks. There is no per-algorithm branching here — EmbedderRegistry and
// the NodeEmbedding adapters do all the dispatch.
//
//   # train (writes embedding.bin in the unified artifact format)
//   ./pane_cli --mode=train --method=pane --graph=/data/cora
//        --out=embedding.bin --k=128 --alpha=0.5 --epsilon=0.015 --threads=8
//   # evaluate any method on all three tasks
//   ./pane_cli --mode=eval --method=nrp --graph=/data/cora
//
// With --graph=demo (default) a synthetic Cora-like graph is generated and
// saved to a temp directory first, so the binary runs out of the box.
#include <cstdio>
#include <filesystem>

#include "src/api/evaluate.h"
#include "src/api/node_embedding.h"
#include "src/api/registry.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/common/timer.h"
#include "src/datasets/registry.h"
#include "src/graph/graph_io.h"
#include "src/parallel/thread_pool.h"

namespace {

// Dispatches on the path: text-layout directory, binary snapshot, or raw
// edge list (SNAP-style). Text parsing is chunked across `num_threads`.
pane::AttributedGraph LoadOrDemo(const std::string& graph_arg,
                                 int num_threads) {
  if (graph_arg != "demo") {
    pane::ThreadPool pool(num_threads);
    auto loaded = pane::LoadGraphAuto(graph_arg, &pool);
    PANE_CHECK(loaded.ok()) << loaded.status();
    return loaded.MoveValueUnsafe();
  }
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pane_cli_demo").string();
  const pane::AttributedGraph g = *pane::MakeDatasetByName("cora", 1.0);
  PANE_CHECK_OK(pane::SaveGraphText(g, dir));
  std::printf("demo graph written to %s (reload it with --graph=%s)\n",
              dir.c_str(), dir.c_str());
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddString("method", "pane",
                  "embedder to run: " + pane::Join(
                      pane::EmbedderRegistry::Names(), " | "));
  flags.AddString("mode", "eval", "train | eval");
  flags.AddString("graph", "demo",
                  "graph to load: text-layout directory, binary snapshot "
                  "(.bin), raw edge-list file, or 'demo'");
  flags.AddString("out", "/tmp/pane_embedding.bin", "embedding output path");
  flags.AddInt("k", 128, "space budget");
  flags.AddDouble("alpha", 0.5, "random-walk stopping probability (PANE)");
  flags.AddDouble("epsilon", 0.015, "affinity error threshold (PANE)");
  flags.AddInt("threads", 4, "worker threads (1 = Algorithm 1)");
  flags.AddInt("memory-budget-mb", 0,
               "whole-pipeline memory budget in MiB (PANE): panel scratch, "
               "CCD strips, and mmap-spill of the n x d factors when they "
               "exceed it (0 = unbounded; see README \"Memory model & "
               "tuning\")");
  flags.AddInt("affinity-memory-mb", 0,
               "DEPRECATED alias for --memory-budget-mb");
  flags.AddString("spill-dir", "",
                  "directory for factor spill files (default: temp dir)");
  flags.AddString("spill-mode", "pooled",
                  "spill flavor once over budget (PANE): 'pooled' evicts "
                  "page-granular through the shared buffer pool, 'flat' "
                  "drops whole panels (the pre-pool path)");
  flags.AddString("output-format", "legacy",
                  "artifact layout for --mode=train: 'legacy' (one-pass "
                  "binary) or 'container' (paged, CRC32C-checksummed "
                  "single-file container; see README \"Artifact "
                  "container\"). Load dispatches on the file magic either "
                  "way");
  flags.AddBool("verbose", false,
                "log the engine decomposition (panel width/panels/scratch, "
                "slab backing, CCD strips) after training");
  flags.AddInt("seed", 42, "random seed");
  flags.AddString("opt", "",
                  "extra method-specific config entries, comma-separated "
                  "key=value (e.g. teleport=0.2,bit_width=3)");
  PANE_CHECK_OK(flags.Parse(argc, argv));

  // The registered flags are bridged into the config wholesale; --opt
  // reaches any method-specific key the flag set doesn't name. The chosen
  // embedder reads the keys it knows and validates them.
  const std::string method = flags.GetString("method");
  auto config = pane::EmbedderConfig::FromFlags(flags);
  for (const auto entry : pane::Split(flags.GetString("opt"), ',')) {
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    PANE_CHECK(eq != std::string_view::npos)
        << "--opt entries must look like key=value, got: " << entry;
    config.Set(std::string(entry.substr(0, eq)),
               std::string(entry.substr(eq + 1)));
  }
  const auto embedder = pane::EmbedderRegistry::Create(method, config);
  PANE_CHECK(embedder.ok()) << embedder.status();

  const pane::AttributedGraph graph =
      LoadOrDemo(flags.GetString("graph"), flags.GetInt("threads"));
  std::printf("loaded %s\n", graph.Summary().c_str());

  if (flags.GetString("mode") == "train") {
    const std::string output_format = flags.GetString("output-format");
    PANE_CHECK(output_format == "legacy" || output_format == "container")
        << "unknown --output-format (use legacy or container)";
    pane::WallTimer timer;
    const auto embedding = (*embedder)->Train(graph);
    PANE_CHECK(embedding.ok()) << embedding.status();
    if (output_format == "container") {
      PANE_CHECK_OK(embedding->SaveContainer(flags.GetString("out")));
    } else {
      PANE_CHECK_OK(embedding->Save(flags.GetString("out")));
    }
    std::printf(
        "trained %s embedding (n=%lld, dim=%lld, link=%s, attr=%s) in %.2fs; "
        "wrote %s\n",
        embedding->method.c_str(),
        static_cast<long long>(embedding->num_nodes()),
        static_cast<long long>(embedding->dim()),
        pane::LinkConventionToString(embedding->link_convention),
        pane::AttributeConventionToString(embedding->attribute_convention),
        timer.ElapsedSeconds(), flags.GetString("out").c_str());
    return 0;
  }

  PANE_CHECK(flags.GetString("mode") == "eval")
      << "unknown --mode (use train or eval)";
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  {  // Attribute inference.
    const auto r =
        pane::RunAttributeInference(**embedder, graph, 0.2, seed);
    PANE_CHECK(r.ok()) << r.status();
    std::printf("attribute inference: AUC %.3f  AP %.3f\n", r->auc, r->ap);
  }
  {  // Link prediction.
    const auto r = pane::RunLinkPrediction(**embedder, graph, 0.3, seed);
    PANE_CHECK(r.ok()) << r.status();
    std::printf("link prediction:     AUC %.3f  AP %.3f\n", r->auc, r->ap);
  }
  if (graph.has_labels()) {  // Node classification.
    pane::NodeClassificationOptions nc;
    nc.train_fraction = 0.5;
    nc.repeats = 3;
    const auto f1 = pane::RunNodeClassification(**embedder, graph, nc);
    PANE_CHECK(f1.ok()) << f1.status();
    std::printf("node classification: micro-F1 %.3f  macro-F1 %.3f\n",
                f1->micro, f1->macro);
  } else {
    std::printf("node classification: skipped (no labels)\n");
  }
  return 0;
}
