// Citation-network scenario (the paper's Cora/Citeseer motif): a directed
// citation graph whose papers carry bag-of-words attributes. Trains PANE,
// then (a) infers held-out paper keywords (attribute inference) and
// (b) classifies papers into research areas with a linear SVM on the
// embeddings — the two quality tasks of Tables 4 and Figure 2.
//
//   ./examples/citation_inference [--scale=1.0] [--k=128]
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/core/pane.h"
#include "src/datasets/registry.h"
#include "src/tasks/attribute_inference.h"
#include "src/tasks/node_classification.h"

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddDouble("scale", 1.0, "dataset scale factor");
  flags.AddInt("k", 128, "embedding space budget");
  PANE_CHECK_OK(flags.Parse(argc, argv));

  const pane::AttributedGraph graph =
      *pane::MakeDatasetByName("cora", flags.GetDouble("scale"));
  std::printf("citation network: %s\n", graph.Summary().c_str());

  // ---- attribute inference: hide 20% of the word occurrences, train on
  // the rest, rank held-out (paper, word) pairs against negatives.
  const auto split = pane::SplitAttributes(graph, 0.2, /*seed=*/1).ValueOrDie();
  pane::PaneOptions options;
  options.k = static_cast<int>(flags.GetInt("k"));
  options.num_threads = 2;
  const auto embedding =
      pane::Pane(options).Train(split.train_graph).ValueOrDie();

  const pane::AucAp inference = pane::EvaluateAttributeInference(
      split, [&](int64_t v, int64_t r) { return embedding.AttributeScore(v, r); });
  std::printf("\nattribute inference on held-out keywords:\n");
  std::printf("  AUC = %.3f, AP = %.3f\n", inference.auc, inference.ap);

  // Show the top predicted keywords for one paper.
  const int64_t paper = 0;
  std::printf("\ntop-5 predicted attributes for paper %lld:",
              static_cast<long long>(paper));
  std::vector<std::pair<double, int64_t>> ranked;
  for (int64_t r = 0; r < graph.num_attributes(); ++r) {
    ranked.emplace_back(embedding.AttributeScore(paper, r), r);
  }
  std::partial_sort(ranked.begin(), ranked.begin() + 5, ranked.end(),
                    std::greater<>());
  for (int i = 0; i < 5; ++i) {
    std::printf(" attr%lld(%.2f)", static_cast<long long>(ranked[i].second),
                ranked[i].first);
  }
  std::printf("\n");

  // ---- node classification: embeddings (trained on the full graph) as SVM
  // features for the paper's research-area labels.
  const auto full_embedding = pane::Pane(options).Train(graph).ValueOrDie();
  const pane::DenseMatrix features = pane::ConcatNormalizedEmbeddings(
      full_embedding.xf, full_embedding.xb);
  pane::NodeClassificationOptions nc_options;
  nc_options.train_fraction = 0.5;
  nc_options.repeats = 3;
  const pane::F1Scores f1 =
      pane::EvaluateNodeClassification(features, graph, nc_options)
          .ValueOrDie();
  std::printf("\nnode classification (50%% train, 3 repeats):\n");
  std::printf("  micro-F1 = %.3f, macro-F1 = %.3f  (%d classes)\n", f1.micro,
              f1.macro, graph.num_label_classes());
  return 0;
}
