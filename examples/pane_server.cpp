// The serving front-end: opens a trained NodeEmbedding artifact through the
// mmap-shared EmbeddingStore, builds a batched QueryEngine (exact, or
// IVF-pruned with --pruned), and serves the line protocol of
// src/serve/line_protocol.h over stdin/stdout (default) or TCP (--port).
//
//   # train an artifact first
//   ./pane_cli --mode=train --method=pane --graph=/data/cora --out=emb.bin
//   # serve it: one request per line, responses in request order
//   printf 'attr 3 5\nlink 3 5\npair 0 7\n' | ./pane_server --embedding=emb.bin
//   # recommendation mode (skip known attributes / existing edges)
//   ./pane_server --embedding=emb.bin --graph=/data/cora
//   # approximate mode with a recall knob
//   ./pane_server --embedding=emb.bin --pruned --nprobe=8 --clusters=64
//   # TCP instead of stdin (loopback)
//   ./pane_server --embedding=emb.bin --port=7077
//
// Sharded serving (the scatter-gather fabric of src/serve/router.h):
//
//   # router over an in-process fleet: the candidate space is cut into N
//   # row shards, each scanned by a serial engine, fanned out in parallel
//   ./pane_server --embedding=emb.bin --local-shards=4 --port=7077
//   # router over remote shard servers (each serving a pane_shardctl slice)
//   ./pane_server --embedding=emb.shard.0 --port=7071 &
//   ./pane_server --embedding=emb.shard.1 --port=7072 &
//   ./pane_server --shards=127.0.0.1:7071,127.0.0.1:7072 --port=7077
//
// Either way the router's responses are byte-identical to an unsharded
// server over the same artifact; a dead shard degrades the affected
// queries to `err shard unavailable` rather than a partial merge.
//
// Because the store maps the artifact read-only (MAP_SHARED), any number of
// pane_server processes over the same file share one physical copy of the
// embedding through the page cache.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <thread>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/graph/graph_io.h"
#include "src/obs/metrics.h"
#include "src/parallel/thread_pool.h"
#include "src/serve/embedding_store.h"
#include "src/serve/query_engine.h"
#include "src/serve/router.h"
#include "src/serve/server.h"

namespace {

/// Splits a comma-separated --shards list; empty elements are rejected.
std::vector<std::string> SplitAddresses(const std::string& list) {
  std::vector<std::string> addresses;
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    PANE_CHECK(end > begin) << "--shards has an empty element: " << list;
    addresses.push_back(list.substr(begin, end - begin));
    begin = end + 1;
  }
  return addresses;
}

}  // namespace

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddString("embedding", "", "NodeEmbedding artifact to serve");
  flags.AddString("graph", "",
                  "optional graph for recommendation mode: known attributes "
                  "/ existing out-edges of the query node are skipped");
  flags.AddInt("port", 0, "TCP port to listen on (0 = serve stdin/stdout; "
                          "loopback only)");
  flags.AddString("protocol", "auto",
                  "wire format: 'line' (newline-delimited text), 'frame' "
                  "(length-prefixed binary), or 'auto' (sniff per "
                  "connection from the first byte)");
  flags.AddInt("max-connections", 256,
               "open-connection cap; connections beyond it are refused "
               "with 'err server busy' and closed");
  flags.AddInt("idle-timeout-ms", 0,
               "reap TCP connections idle this long (0 disables)");
  flags.AddInt("threads", 4, "engine worker threads for batch execution");
  flags.AddInt("batch-size", 64, "max requests per engine batch");
  flags.AddInt("cache-size", 1024, "LRU result-cache entries (0 disables)");
  flags.AddBool("pruned", false,
                "serve top-k through the IVF cluster-pruned indexes "
                "(approximate; see --nprobe)");
  flags.AddInt("nprobe", 8, "clusters probed per pruned query (recall knob)");
  flags.AddInt("clusters", 0,
               "IVF clusters (0 = ceil(sqrt(#candidates)))");
  flags.AddInt("kmeans-iters", 10, "k-means iterations for the IVF build");
  flags.AddInt("seed", 42, "IVF build seed");
  flags.AddString("ivf", "",
                  "pruned-index container path: when the file exists the "
                  "indexes are loaded from it (skipping the k-means build); "
                  "when it does not, they are built and saved there for the "
                  "next start");
  flags.AddInt("memory-budget-mb", 0,
               "caps the engine's per-batch scoring scratch (0 = default)");
  flags.AddInt("local-shards", 0,
               "router mode over an in-process fleet: cut --embedding into "
               "this many row shards, each scanned by a serial engine, "
               "fanned out across --threads (0 = unsharded serving)");
  flags.AddString("shards", "",
                  "router mode over remote shards: comma-separated "
                  "host:port list of shard servers, in plan order "
                  "(--embedding not needed)");
  flags.AddInt("hop-timeout-ms", 2000,
               "router: per-shard-hop deadline; a shard missing it answers "
               "'err shard unavailable'");
  flags.AddInt("max-frame-mb", 0,
               "upper bound on one inbound frame payload, in MiB (0 = the "
               "protocol default, 16); also bounds router hop replies");
  flags.AddBool("stats", false,
                "print one consistent counter snapshot to stderr at exit "
                "(taken in a single locked read, not field by field)");
  flags.AddInt("metrics-interval-ms", 0,
               "log a one-line metrics summary (requests, batch-latency "
               "percentiles) to stderr this often (0 disables); the full "
               "exposition is always available via the 'metrics' verb");
  flags.AddInt("slow-query-us", 0,
               "log one structured stage breakdown per engine batch whose "
               "traced total reaches this many microseconds (0 disables)");
  flags.AddBool("verbose", false, "log store / engine configuration");
  PANE_CHECK_OK(flags.Parse(argc, argv));

  const std::string shards_flag = flags.GetString("shards");
  const int local_shards = static_cast<int>(flags.GetInt("local-shards"));
  const bool remote_router = !shards_flag.empty();
  PANE_CHECK(!(remote_router && local_shards > 0))
      << "--shards and --local-shards are mutually exclusive";
  PANE_CHECK(remote_router || !flags.GetString("embedding").empty())
      << "--embedding=<artifact> is required (train one with pane_cli) "
         "unless routing to remote --shards";

  pane::ThreadPool pool(static_cast<int>(flags.GetInt("threads")));

  // One registry for the whole process: engine, router, shards, transport,
  // and server all record into it, so the `metrics` verb exposes every
  // layer in one exposition. Declared before the server objects — they
  // hold handles into it.
  pane::obs::MetricsRegistry registry;

  // No float copies: the IVF build makes its own single-precision
  // candidate/centroid storage (the link index scores Z rows, which exist
  // only post-derivation), and keeping the store copy-free preserves the
  // MAP_SHARED one-physical-copy property across server processes.
  std::unique_ptr<pane::serve::EmbeddingStore> store;
  if (!remote_router) {
    auto opened =
        pane::serve::EmbeddingStore::Open(flags.GetString("embedding"));
    PANE_CHECK(opened.ok()) << opened.status();
    store = std::make_unique<pane::serve::EmbeddingStore>(
        opened.MoveValueUnsafe());
    if (flags.GetBool("verbose")) {
      std::fprintf(stderr,
                   "store: method=%s n=%lld dim=%lld attrs=%lld mapped=%lldB "
                   "zero_copy=%d sharded=%d\n",
                   store->method().c_str(),
                   static_cast<long long>(store->num_nodes()),
                   static_cast<long long>(store->dim()),
                   static_cast<long long>(store->num_attributes()),
                   static_cast<long long>(store->mapped_bytes()),
                   store->zero_copy() ? 1 : 0, store->sharded() ? 1 : 0);
    }
  }

  pane::serve::IvfOptions ivf;
  ivf.num_clusters = flags.GetInt("clusters");
  ivf.kmeans_iters = static_cast<int>(flags.GetInt("kmeans-iters"));
  ivf.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  ivf.pool = &pool;

  std::unique_ptr<pane::serve::QueryEngine> engine;
  if (!remote_router && local_shards == 0) {
    pane::serve::QueryEngineOptions engine_options;
    engine_options.pool = &pool;
    engine_options.memory_budget_mb = flags.GetInt("memory-budget-mb");
    engine_options.metrics = &registry;
    auto created = pane::serve::QueryEngine::Create(*store, engine_options);
    PANE_CHECK(created.ok()) << created.status();
    engine = std::make_unique<pane::serve::QueryEngine>(
        created.MoveValueUnsafe());

    if (flags.GetBool("pruned")) {
      const std::string ivf_path = flags.GetString("ivf");
      std::error_code ec;
      if (!ivf_path.empty() && std::filesystem::exists(ivf_path, ec)) {
        // Restart path: adopt the saved indexes instead of re-running
        // k-means.
        pane::WallTimer timer;
        PANE_CHECK_OK(engine->LoadPrunedIndex(ivf_path));
        std::fprintf(stderr, "ivf: loaded %s in %.3fs (k-means skipped)\n",
                     ivf_path.c_str(), timer.ElapsedSeconds());
      } else {
        pane::WallTimer timer;
        PANE_CHECK_OK(engine->BuildPrunedIndex(ivf));
        std::fprintf(stderr, "ivf: built in %.3fs\n",
                     timer.ElapsedSeconds());
        if (!ivf_path.empty()) {
          PANE_CHECK_OK(engine->SavePrunedIndex(ivf_path));
          std::fprintf(stderr, "ivf: saved to %s (next start loads it)\n",
                       ivf_path.c_str());
        }
      }
      if (flags.GetBool("verbose")) {
        std::fprintf(
            stderr, "ivf: attr_clusters=%lld link_clusters=%lld\n",
            static_cast<long long>(engine->attr_index().num_clusters()),
            static_cast<long long>(engine->link_index().num_clusters()));
      }
    }
  }

  pane::AttributedGraph exclude_graph;
  pane::serve::ServerOptions server_options;
  if (!flags.GetString("graph").empty()) {
    PANE_CHECK(store != nullptr)
        << "--graph needs a local --embedding (remote shards apply their "
           "own --graph)";
    auto loaded = pane::LoadGraphAuto(flags.GetString("graph"), &pool);
    PANE_CHECK(loaded.ok()) << loaded.status();
    exclude_graph = loaded.MoveValueUnsafe();
    PANE_CHECK(exclude_graph.num_nodes() == store->num_nodes())
        << "graph / embedding node-count mismatch";
    server_options.exclude = &exclude_graph;
  }
  server_options.batch_size = flags.GetInt("batch-size");
  server_options.cache_capacity = flags.GetInt("cache-size");
  server_options.pruned = flags.GetBool("pruned");
  server_options.nprobe = flags.GetInt("nprobe");
  PANE_CHECK(pane::serve::ParseProtocolName(flags.GetString("protocol"),
                                            &server_options.protocol))
      << "--protocol must be 'auto', 'line', or 'frame', got '"
      << flags.GetString("protocol") << "'";
  server_options.max_connections = flags.GetInt("max-connections");
  server_options.idle_timeout_ms = flags.GetInt("idle-timeout-ms");
  server_options.max_frame_bytes = flags.GetInt("max-frame-mb") << 20;
  server_options.metrics = &registry;
  server_options.slow_query_us = flags.GetInt("slow-query-us");

  // The fleet (local mode) and router must outlive the server.
  pane::serve::LocalFleet fleet;
  std::unique_ptr<pane::serve::Router> router;
  std::unique_ptr<pane::serve::PaneServer> server;
  if (remote_router || local_shards > 0) {
    pane::serve::RouterOptions router_options;
    router_options.hop_timeout_ms = flags.GetInt("hop-timeout-ms");
    router_options.max_frame_bytes = server_options.max_frame_bytes;
    router_options.pool = &pool;
    router_options.metrics = &registry;
    std::vector<std::unique_ptr<pane::serve::ShardBackend>> backends;
    if (remote_router) {
      for (const std::string& address : SplitAddresses(shards_flag)) {
        backends.push_back(
            std::make_unique<pane::serve::RemoteShard>(address,
                                                       router_options));
      }
    } else {
      // Serial shard engines; the router's fan-out over `pool` is the
      // parallelism, so engine and fan-out threads never nest.
      pane::serve::QueryEngineOptions shard_engine_options;
      shard_engine_options.memory_budget_mb =
          flags.GetInt("memory-budget-mb");
      shard_engine_options.metrics = &registry;
      auto built = pane::serve::BuildLocalShards(
          *store, local_shards, shard_engine_options, server_options,
          flags.GetBool("pruned") ? &ivf : nullptr);
      PANE_CHECK(built.ok()) << built.status();
      fleet = built.MoveValueUnsafe();
      backends = std::move(fleet.backends);
    }
    auto created =
        pane::serve::Router::Create(std::move(backends), router_options);
    PANE_CHECK(created.ok()) << created.status();
    router = std::make_unique<pane::serve::Router>(created.MoveValueUnsafe());
    if (flags.GetBool("verbose")) {
      std::fprintf(stderr, "router: shards=%d n=%lld attrs=%lld dim=%lld\n",
                   router->num_shards(),
                   static_cast<long long>(router->num_nodes()),
                   static_cast<long long>(router->num_attributes()),
                   static_cast<long long>(router->dim()));
    }
    server = std::make_unique<pane::serve::PaneServer>(router.get(),
                                                       server_options);
  } else {
    server = std::make_unique<pane::serve::PaneServer>(engine.get(),
                                                       server_options);
  }

  // Periodic metrics logging through the guarded logger: a background
  // thread snapshots the batch histogram and the served-request counters
  // every --metrics-interval-ms. Short sleep steps keep shutdown prompt.
  const int64_t metrics_interval_ms = flags.GetInt("metrics-interval-ms");
  std::atomic<bool> stop_metrics{false};
  std::thread metrics_thread;
  if (metrics_interval_ms > 0) {
    metrics_thread = std::thread([&registry, &server, &stop_metrics,
                                  metrics_interval_ms]() {
      pane::obs::Histogram* batch_us =
          registry.GetHistogram("pane_server_batch_us");
      int64_t last_ms = pane::MonotonicMillis();
      while (!stop_metrics.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        const int64_t now_ms = pane::MonotonicMillis();
        if (now_ms - last_ms < metrics_interval_ms) continue;
        last_ms = now_ms;
        const pane::obs::Histogram::Snapshot snap = batch_us->TakeSnapshot();
        const auto counters = server->counters();
        PANE_LOG(INFO) << "metrics requests=" << counters.requests
                       << " batches=" << counters.batches
                       << " errors=" << counters.errors
                       << " cache_hits=" << counters.cache_hits
                       << " batch_us_count=" << snap.count
                       << " batch_us_p50=" << snap.p50
                       << " batch_us_p99=" << snap.p99
                       << " batch_us_max=" << snap.max;
      }
    });
  }

  const int64_t port = flags.GetInt("port");
  if (port == 0) {
    server->ServeStream(std::cin, std::cout);
  } else {
    const auto bound = server->ListenTcp(static_cast<int>(port));
    PANE_CHECK(bound.ok()) << bound.status();
    std::fprintf(stderr, "pane_server listening on 127.0.0.1:%d\n", *bound);
    server->AcceptLoop();
  }
  if (metrics_thread.joinable()) {
    stop_metrics.store(true, std::memory_order_release);
    metrics_thread.join();
  }
  // counters() returns one snapshot taken under the server's stats
  // capability (plus the transport's accept-side counters), so the numbers
  // below all belong to the same instant.
  const auto counters = server->counters();
  if (flags.GetBool("stats") || flags.GetBool("verbose")) {
    std::fprintf(stderr,
                 "%s: requests=%llu batches=%llu dedup=%llu cache=%llu "
                 "errors=%llu timeouts=%llu rejected=%llu frames=%llu\n",
                 flags.GetBool("stats") ? "stats" : "served",
                 static_cast<unsigned long long>(counters.requests),
                 static_cast<unsigned long long>(counters.batches),
                 static_cast<unsigned long long>(counters.dedup_hits),
                 static_cast<unsigned long long>(counters.cache_hits),
                 static_cast<unsigned long long>(counters.errors),
                 static_cast<unsigned long long>(counters.timeouts),
                 static_cast<unsigned long long>(counters.rejected),
                 static_cast<unsigned long long>(counters.frames));
  }
  return 0;
}
