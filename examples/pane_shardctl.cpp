// Splits a trained NodeEmbedding artifact into N shard containers for the
// scatter-gather serving fabric (src/serve/router.h):
//
//   ./pane_cli --mode=train --method=pane --graph=/data/cora --out=emb.bin
//   ./pane_shardctl --input=emb.bin --out-prefix=emb.shard --shards=3
//   # -> emb.shard.0  emb.shard.1  emb.shard.2
//   ./pane_server --embedding=emb.shard.0 --port=7071 &
//   ./pane_server --embedding=emb.shard.1 --port=7072 &
//   ./pane_server --embedding=emb.shard.2 --port=7073 &
//   ./pane_server --shards=127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073
//
// Each shard container replicates the query-side factors (Xf, Xb) in full
// and holds contiguous row slices of the candidate matrices: Y rows
// [attr_begin, attr_end) and Z rows [node_begin, node_end), where
// Z = Xb (Y^T Y) is derived ONCE here from the full matrices and sliced —
// never per shard — so every shard's link scores (and therefore the
// router's merged rankings) are bitwise what an unsharded server answers.
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/serve/shard_plan.h"

int main(int argc, char** argv) {
  pane::FlagSet flags;
  flags.AddString("input", "", "NodeEmbedding artifact to split");
  flags.AddString("out-prefix", "",
                  "shard containers are written as <out-prefix>.<i>");
  flags.AddInt("shards", 0, "number of row shards to cut (>= 1)");
  PANE_CHECK_OK(flags.Parse(argc, argv));
  PANE_CHECK(!flags.GetString("input").empty()) << "--input is required";
  PANE_CHECK(!flags.GetString("out-prefix").empty())
      << "--out-prefix is required";
  PANE_CHECK(flags.GetInt("shards") >= 1) << "--shards must be >= 1";

  pane::WallTimer timer;
  std::vector<std::string> paths;
  PANE_CHECK_OK(pane::serve::SplitEmbeddingArtifact(
      flags.GetString("input"), flags.GetString("out-prefix"),
      static_cast<int>(flags.GetInt("shards")), &paths));
  for (const std::string& path : paths) {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
  std::fprintf(stderr, "split into %zu shards in %.3fs\n", paths.size(),
               timer.ElapsedSeconds());
  return 0;
}
